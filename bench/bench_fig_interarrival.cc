/**
 * @file
 * Experiment F-IA — per-application inter-arrival time distributions
 * (the paper's per-application distribution figures): empirical CDF
 * points of the aggregate arrival process with the fitted CDF
 * overlaid, printed as plot-ready series.
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

namespace {

void
printSeries(const cchar::core::CharacterizationReport &report)
{
    std::cout << "# " << report.application << " — aggregate "
              << "inter-arrival time, fit: "
              << report.temporalAggregate.fit.dist->describe()
              << " (R2=" << report.temporalAggregate.fit.gof.r2
              << ")\n";
    std::cout << "# x(us)  F_empirical  F_fitted\n";

    // Re-derive the empirical CDF for plotting. The pipeline does not
    // retain raw samples, so re-run is avoided by sampling the fitted
    // quantile range against the fitted CDF and the summary stats.
    const auto &fit = report.temporalAggregate;
    double xMax = fit.stats.p99 > 0.0 ? fit.stats.p99
                                      : fit.stats.mean * 3.0;
    for (int i = 1; i <= 20; ++i) {
        double x = xMax * static_cast<double>(i) / 20.0;
        std::cout << std::fixed << std::setprecision(5) << std::setw(9)
                  << x << "  " << std::setw(11) << "-" << "  "
                  << std::setw(9) << fit.fit.dist->cdf(x) << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"fig_interarrival"};
    using namespace cchar;
    using namespace cchar::bench;

    std::cout << "F-IA: inter-arrival time CDFs (empirical vs fitted) "
                 "per application\n\n";

    // For two representative applications print the full empirical
    // series by re-running and keeping the raw log.
    core::CharacterizationPipeline pipeline;
    for (const std::string &name : {std::string{"1d-fft"},
                                    std::string{"is"}}) {
        desim::Simulator sim;
        ccnuma::Machine machine{sim, standardMachine()};
        if (name == "1d-fft") {
            apps::Fft1D app;
            apps::launch(machine, app);
            machine.run();
        } else {
            apps::IntegerSort app;
            apps::launch(machine, app);
            machine.run();
        }
        auto gaps = machine.log().interArrivalTimes();
        stats::Ecdf ecdf{gaps};
        stats::DistributionFitter fitter;
        auto best = fitter.bestFit(gaps);
        std::cout << "# " << name << " — " << gaps.size()
                  << " samples, fit " << best.dist->describe()
                  << " R2=" << best.gof.r2 << "\n";
        std::cout << "# x(us)  F_empirical  F_fitted\n";
        auto pts = ecdf.regressionPoints(25);
        for (const auto &[x, f] : pts) {
            std::cout << std::fixed << std::setprecision(5)
                      << std::setw(9) << x << "  " << std::setw(11) << f
                      << "  " << std::setw(9) << best.dist->cdf(x)
                      << "\n";
        }
        std::cout << "\n";
    }

    // Fitted-only series for the rest of the suite.
    for (const std::string &name : {std::string{"cholesky"},
                                    std::string{"nbody"}})
        printSeries(sharedMemoryReport(name));
    for (const auto &name : messagePassingAppNames())
        printSeries(messagePassingReport(name));
    return 0;
}
