/**
 * @file
 * Shared configuration and report builders for the benchmark harness.
 *
 * Every table/figure binary reproduces one element of the paper's
 * evaluation (see DESIGN.md section 4) using the standard setups: the
 * shared-memory suite on a 16-processor 4x4-mesh CC-NUMA machine
 * (dynamic strategy), and the NAS message-passing suite on 8 ranks
 * replayed into a 4x2 mesh (static strategy).
 */

#ifndef CCHAR_BENCH_COMMON_HH
#define CCHAR_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "apps/cholesky.hh"
#include "apps/fft1d.hh"
#include "apps/fft3d.hh"
#include "apps/is.hh"
#include "apps/maxflow.hh"
#include "apps/mg.hh"
#include "apps/nbody.hh"
#include "core/core.hh"
#include "self_report.hh"

namespace cchar::bench {

inline ccnuma::MachineConfig
standardMachine()
{
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    return cfg;
}

inline mp::MpConfig
standardWorld()
{
    mp::MpConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 2;
    return cfg;
}

/** Characterize one shared-memory app by name with standard params. */
inline core::CharacterizationReport
sharedMemoryReport(const std::string &name)
{
    core::CharacterizationPipeline pipeline;
    auto machine = standardMachine();
    if (name == "1d-fft") {
        apps::Fft1D app;
        return pipeline.runDynamic(app, machine);
    }
    if (name == "is") {
        apps::IntegerSort app;
        return pipeline.runDynamic(app, machine);
    }
    if (name == "cholesky") {
        apps::SparseCholesky app;
        return pipeline.runDynamic(app, machine);
    }
    if (name == "maxflow") {
        apps::Maxflow app;
        return pipeline.runDynamic(app, machine);
    }
    if (name == "nbody") {
        apps::Nbody app;
        return pipeline.runDynamic(app, machine);
    }
    throw std::invalid_argument("unknown shared-memory app: " + name);
}

/** Characterize one message-passing app by name (static strategy). */
inline core::CharacterizationReport
messagePassingReport(const std::string &name)
{
    core::CharacterizationPipeline pipeline;
    auto world = standardWorld();
    if (name == "3d-fft") {
        apps::Fft3D app;
        return pipeline.runStatic(app, world);
    }
    if (name == "mg") {
        apps::Multigrid app;
        return pipeline.runStatic(app, world);
    }
    throw std::invalid_argument("unknown message-passing app: " + name);
}

inline const std::vector<std::string> &
sharedMemoryAppNames()
{
    static const std::vector<std::string> names{
        "1d-fft", "is", "cholesky", "maxflow", "nbody"};
    return names;
}

inline const std::vector<std::string> &
messagePassingAppNames()
{
    static const std::vector<std::string> names{"3d-fft", "mg"};
    return names;
}

} // namespace cchar::bench

#endif // CCHAR_BENCH_COMMON_HH
