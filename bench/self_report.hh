/**
 * @file
 * Wall-clock self-report for bench binaries (satellite of the
 * observability layer). Kept separate from common.hh so benches that
 * only link desim/mesh/stats can use it without pulling in the apps.
 */

#ifndef CCHAR_BENCH_SELF_REPORT_HH
#define CCHAR_BENCH_SELF_REPORT_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hh"

namespace cchar::bench {

/**
 * Installs a process-wide metrics registry for its lifetime so every
 * simulation the bench runs is counted; on destruction prints
 * simulator throughput (events/sec, messages/sec) to stderr and drops
 * a machine-readable BENCH_<name>.json record in the working
 * directory.
 */
class SelfReport
{
  public:
    explicit SelfReport(std::string name)
        : name_(std::move(name)), scope_(&registry_),
          start_(std::chrono::steady_clock::now())
    {}

    SelfReport(const SelfReport &) = delete;
    SelfReport &operator=(const SelfReport &) = delete;

    /**
     * Attach a bench-specific numeric field to the JSON record
     * (appended in insertion order after the standard fields).
     */
    void
    extra(std::string key, double value)
    {
        extras_.emplace_back(std::move(key), Value{value, false, false});
    }

    /** Attach a bench-specific boolean field to the JSON record. */
    void
    extraFlag(std::string key, bool value)
    {
        extras_.emplace_back(std::move(key), Value{0.0, value, true});
    }

    ~SelfReport()
    {
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        std::uint64_t events = registry_.counterValue("desim.events");
        std::uint64_t msgs = registry_.counterValue("mesh.messages");
        double eps =
            wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
        double mps =
            wall > 0.0 ? static_cast<double>(msgs) / wall : 0.0;
        std::cerr << "[bench] " << name_ << ": " << wall << "s wall, "
                  << events << " events (" << eps << "/s), " << msgs
                  << " mesh messages (" << mps << "/s)\n";
        std::ofstream f{"BENCH_" + name_ + ".json"};
        f << "{\"bench\":\"" << name_ << "\",\"wall_s\":" << wall
          << ",\"events\":" << events << ",\"events_per_sec\":" << eps
          << ",\"messages\":" << msgs << ",\"messages_per_sec\":" << mps;
        for (const auto &[key, v] : extras_) {
            f << ",\"" << key << "\":";
            if (v.isBool)
                f << (v.flag ? "true" : "false");
            else
                f << v.num;
        }
        f << "}\n";
    }

  private:
    struct Value
    {
        double num;
        bool flag;
        bool isBool;
    };

    std::vector<std::pair<std::string, Value>> extras_;
    std::string name_;
    obs::MetricsRegistry registry_;
    obs::ScopedObservability scope_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace cchar::bench

#endif // CCHAR_BENCH_SELF_REPORT_HH
