/**
 * @file
 * Wall-clock self-report for bench binaries (satellite of the
 * observability layer). Kept separate from common.hh so benches that
 * only link desim/mesh/stats can use it without pulling in the apps.
 */

#ifndef CCHAR_BENCH_SELF_REPORT_HH
#define CCHAR_BENCH_SELF_REPORT_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hh"

namespace cchar::bench {

/**
 * Installs a process-wide metrics registry for its lifetime so every
 * simulation the bench runs is counted; on destruction prints
 * simulator throughput (events/sec, messages/sec) to stderr and drops
 * a machine-readable BENCH_<name>.json record in the working
 * directory.
 */
class SelfReport
{
  public:
    explicit SelfReport(std::string name)
        : name_(std::move(name)), scope_(&registry_),
          start_(std::chrono::steady_clock::now())
    {}

    SelfReport(const SelfReport &) = delete;
    SelfReport &operator=(const SelfReport &) = delete;

    ~SelfReport()
    {
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        std::uint64_t events = registry_.counterValue("desim.events");
        std::uint64_t msgs = registry_.counterValue("mesh.messages");
        double eps =
            wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
        double mps =
            wall > 0.0 ? static_cast<double>(msgs) / wall : 0.0;
        std::cerr << "[bench] " << name_ << ": " << wall << "s wall, "
                  << events << " events (" << eps << "/s), " << msgs
                  << " mesh messages (" << mps << "/s)\n";
        std::ofstream f{"BENCH_" + name_ + ".json"};
        f << "{\"bench\":\"" << name_ << "\",\"wall_s\":" << wall
          << ",\"events\":" << events << ",\"events_per_sec\":" << eps
          << ",\"messages\":" << msgs << ",\"messages_per_sec\":" << mps
          << "}\n";
    }

  private:
    std::string name_;
    obs::MetricsRegistry registry_;
    obs::ScopedObservability scope_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace cchar::bench

#endif // CCHAR_BENCH_SELF_REPORT_HH
