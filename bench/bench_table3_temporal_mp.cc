/**
 * @file
 * Experiment T3 — fitted inter-arrival time distributions for the
 * NAS message-passing applications (static strategy: SP2-model
 * execution, application-level trace, replay into the 4x2 mesh).
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

namespace {

void
printFit(const std::string &app, const cchar::core::TemporalFit &fit)
{
    std::cout << std::left << std::setw(10) << app << std::setw(6)
              << (fit.source < 0 ? std::string{"all"}
                                 : "p" + std::to_string(fit.source))
              << std::right << std::setw(7) << fit.stats.count
              << std::setw(11) << std::fixed << std::setprecision(3)
              << fit.stats.mean << std::setw(7) << std::setprecision(2)
              << fit.stats.cv << "  " << std::left << std::setw(44)
              << (fit.fit.dist ? fit.fit.dist->describe()
                               : std::string{"-"})
              << std::right << std::setw(7) << std::setprecision(4)
              << fit.fit.gof.r2 << std::setw(8) << fit.fit.gof.ks
              << "\n";
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"table3_temporal_mp"};
    using namespace cchar;
    using namespace cchar::bench;

    std::cout << "T3: inter-arrival time distribution fits, "
                 "message-passing suite (static strategy)\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::setw(6)
              << "src" << std::right << std::setw(7) << "n"
              << std::setw(11) << "mean(us)" << std::setw(7) << "CV"
              << "  " << std::left << std::setw(44) << "best fit"
              << std::right << std::setw(7) << "R2" << std::setw(8)
              << "KS"
              << "\n";
    std::cout << std::string(100, '-') << "\n";

    for (const auto &name : messagePassingAppNames()) {
        auto report = messagePassingReport(name);
        printFit(name, report.temporalAggregate);
        for (const auto &fit : report.temporalPerSource)
            printFit(name, fit);
        std::cout << "\n";
    }
    return 0;
}
