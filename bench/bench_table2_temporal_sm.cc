/**
 * @file
 * Experiment T2 — fitted inter-arrival time distributions for the
 * shared-memory applications (dynamic strategy).
 *
 * The paper's central result: the message generation of each
 * application "can be expressed in terms of commonly used
 * distributions", obtained by non-linear regression of candidate CDFs
 * on the network log. Rows: aggregate fit per application, plus the
 * per-processor fits for p0..p3 as the paper plots per-processor
 * distributions.
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

namespace {

void
printFit(const std::string &app, const cchar::core::TemporalFit &fit)
{
    std::cout << std::left << std::setw(10) << app << std::setw(6)
              << (fit.source < 0 ? std::string{"all"}
                                 : "p" + std::to_string(fit.source))
              << std::right << std::setw(7) << fit.stats.count
              << std::setw(10) << std::fixed << std::setprecision(4)
              << fit.stats.mean << std::setw(7) << std::setprecision(2)
              << fit.stats.cv << "  " << std::left << std::setw(44)
              << (fit.fit.dist ? fit.fit.dist->describe()
                               : std::string{"-"})
              << std::right << std::setw(7) << std::setprecision(4)
              << fit.fit.gof.r2 << std::setw(8) << fit.fit.gof.ks
              << "\n";
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"table2_temporal_sm"};
    using namespace cchar;
    using namespace cchar::bench;

    std::cout << "T2: inter-arrival time distribution fits, "
                 "shared-memory suite (dynamic strategy)\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::setw(6)
              << "src" << std::right << std::setw(7) << "n"
              << std::setw(10) << "mean(us)" << std::setw(7) << "CV"
              << "  " << std::left << std::setw(44) << "best fit"
              << std::right << std::setw(7) << "R2" << std::setw(8)
              << "KS"
              << "\n";
    std::cout << std::string(99, '-') << "\n";

    for (const auto &name : sharedMemoryAppNames()) {
        auto report = sharedMemoryReport(name);
        printFit(name, report.temporalAggregate);
        int shown = 0;
        for (const auto &fit : report.temporalPerSource) {
            if (shown++ >= 4)
                break;
            printFit(name, fit);
        }
        std::cout << "\n";
    }
    return 0;
}
