/**
 * @file
 * Experiment M1 — analytical model vs event-driven simulation.
 *
 * The methodology's deliverable: the fitted characterization drives an
 * M/G/1-style wormhole mesh model (core::AnalyticMeshModel). For every
 * application, the model's latency/contention/utilization predictions
 * are compared with the simulator's measurements, and a load sweep
 * shows the model tracking the simulated saturation behaviour of the
 * synthetic workload.
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

int
main()
{
    cchar::bench::SelfReport selfReport{"analytic_model"};
    using namespace cchar;
    using namespace cchar::bench;

    std::cout << "M1: analytical wormhole model vs simulation\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::right
              << std::setw(11) << "sim-lat" << std::setw(11)
              << "model-lat" << std::setw(11) << "sim-cont"
              << std::setw(12) << "model-cont" << std::setw(10)
              << "sim-util" << std::setw(11) << "model-util"
              << std::setw(9) << "stable"
              << "\n";
    std::cout << std::string(85, '-') << "\n";

    std::vector<core::CharacterizationReport> reports;
    for (const auto &name : sharedMemoryAppNames())
        reports.push_back(sharedMemoryReport(name));
    for (const auto &name : messagePassingAppNames())
        reports.push_back(messagePassingReport(name));

    for (const auto &report : reports) {
        auto model = core::AnalyticMeshModel::evaluate(report);
        std::cout << std::left << std::setw(10) << report.application
                  << std::right << std::fixed << std::setprecision(4)
                  << std::setw(11) << report.network.latencyMean
                  << std::setw(11) << model.latencyMean << std::setw(11)
                  << report.network.contentionMean << std::setw(12)
                  << model.contentionMean << std::setprecision(3)
                  << std::setw(10)
                  << report.network.avgChannelUtilization
                  << std::setw(11) << model.avgChannelUtilization
                  << std::setw(9) << (model.stable ? "yes" : "NO")
                  << "\n";
    }

    // Load sweep on the IS model: analytical curve vs synthetic
    // simulation of the same fitted workload.
    std::cout << "\nIS load sweep — model vs synthetic simulation "
                 "(paced injection, 4 outstanding):\n";
    std::cout << std::right << std::setw(8) << "load" << std::setw(12)
              << "model-lat" << std::setw(12) << "sim-lat"
              << std::setw(13) << "model-util" << std::setw(11)
              << "sim-util"
              << "\n";
    std::cout << std::string(56, '-') << "\n";
    auto &isReport = reports[1]; // "is"
    for (double load : {0.25, 0.5, 1.0, 1.5}) {
        auto model = core::AnalyticMeshModel::evaluate(isReport, load);
        auto synthModel = core::SyntheticModel::fromReport(isReport);
        auto sim = core::SyntheticTrafficGenerator::run(
            synthModel, 77, 1.0 / load, 4);
        std::cout << std::fixed << std::setprecision(2) << std::setw(8)
                  << load << std::setprecision(4) << std::setw(12)
                  << model.latencyMean << std::setw(12)
                  << sim.latencyMean << std::setprecision(3)
                  << std::setw(13) << model.avgChannelUtilization
                  << std::setw(11) << sim.avgChannelUtilization
                  << (model.stable ? "" : "  [saturated]") << "\n";
    }
    std::cout << "\nExpected shape: the model tracks the simulated "
                 "latency ordering across applications and the "
                 "utilization growth with load; absolute errors grow "
                 "near saturation (open M/G/1 approximation).\n";
    return 0;
}
