/**
 * @file
 * Experiment S1 — communication attributes vs system size.
 *
 * Runs 1D-FFT, IS and Nbody on 2x2, 4x2 and 4x4 meshes (same problem
 * size) and reports how the three attributes evolve: message count,
 * inter-arrival mean/CV, best-fit family, spatial pattern and mean
 * hop distance. The paper's methodology is meant to feed scalability
 * studies; this table shows the characterization moving with P.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "common.hh"

namespace {

using namespace cchar;

std::unique_ptr<apps::SharedMemoryApp>
makeApp(const std::string &name)
{
    if (name == "1d-fft")
        return std::make_unique<apps::Fft1D>();
    if (name == "is")
        return std::make_unique<apps::IntegerSort>();
    return std::make_unique<apps::Nbody>();
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"scaling_procs"};
    std::cout << "S1: characterization vs system size (same problem "
                 "size per app)\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::right
              << std::setw(6) << "procs" << std::setw(9) << "msgs"
              << std::setw(10) << "IAT(us)" << std::setw(7) << "CV"
              << "  " << std::left << std::setw(20) << "fit"
              << std::setw(18) << "spatial" << std::right
              << std::setw(9) << "avgHops"
              << "\n";
    std::cout << std::string(89, '-') << "\n";

    struct Shape
    {
        int width, height;
    };
    for (const std::string &name :
         {std::string{"1d-fft"}, std::string{"is"},
          std::string{"nbody"}}) {
        for (Shape shape : {Shape{2, 2}, Shape{4, 2}, Shape{4, 4}}) {
            ccnuma::MachineConfig cfg;
            cfg.mesh.width = shape.width;
            cfg.mesh.height = shape.height;
            auto app = makeApp(name);
            core::CharacterizationPipeline pipeline;
            auto report = pipeline.runDynamic(*app, cfg);
            std::cout << std::left << std::setw(10) << name
                      << std::right << std::setw(6) << report.nprocs
                      << std::setw(9) << report.volume.messageCount
                      << std::setw(10) << std::fixed
                      << std::setprecision(4)
                      << report.temporalAggregate.stats.mean
                      << std::setw(7) << std::setprecision(2)
                      << report.temporalAggregate.stats.cv << "  "
                      << std::left << std::setw(20)
                      << report.temporalAggregate.fit.dist->name()
                      << std::setw(18)
                      << stats::toString(report.spatialAggregate.pattern)
                      << std::right << std::setw(9)
                      << std::setprecision(2) << report.network.avgHops
                      << (report.verified ? "" : "  [VERIFY FAILED]")
                      << "\n";
        }
        std::cout << "\n";
    }
    return 0;
}
