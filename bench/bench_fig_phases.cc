/**
 * @file
 * Experiment F-PH — phase structure of the message generation.
 *
 * The paper describes each application in terms of execution phases
 * ("there are three main phases in the execution [of 1D-FFT]; in the
 * first and last phase ... an entirely local operation"). This figure
 * slices each run into equal time windows and fits the arrival
 * process per window: phase boundaries show up as sharp changes in
 * rate and in the winning distribution family.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "common.hh"

int
main()
{
    cchar::bench::SelfReport selfReport{"fig_phases"};
    using namespace cchar;
    using namespace cchar::bench;

    std::cout << "F-PH: windowed inter-arrival analysis (8 windows "
                 "per run)\n\n";

    for (const std::string &name :
         {std::string{"1d-fft"}, std::string{"nbody"},
          std::string{"is"}}) {
        desim::Simulator sim;
        ccnuma::Machine machine{sim, standardMachine()};
        std::unique_ptr<apps::SharedMemoryApp> app;
        if (name == "1d-fft")
            app = std::make_unique<apps::Fft1D>();
        else if (name == "is")
            app = std::make_unique<apps::IntegerSort>();
        else
            app = std::make_unique<apps::Nbody>();
        apps::launch(machine, *app);
        machine.run();

        core::TemporalAnalyzer analyzer;
        auto windows = analyzer.analyzeWindows(machine.log(), 8);
        std::cout << "# " << name << "\n";
        std::cout << "# win     msgs   rate(/us)      CV  family\n";
        for (const auto &w : windows) {
            double rate =
                w.stats.mean > 0.0 ? 1.0 / w.stats.mean : 0.0;
            std::cout << "  " << std::setw(3) << w.source
                      << std::setw(9) << (w.stats.count + 1)
                      << std::setw(12) << std::fixed
                      << std::setprecision(3) << rate << std::setw(8)
                      << std::setprecision(2) << w.stats.cv << "  "
                      << (w.fit.dist ? w.fit.dist->name()
                                     : std::string{"(sparse)"})
                      << "\n";
        }
        std::cout << "\n";
    }
    std::cout << "Expected shape: rate swings across windows follow "
                 "the applications' compute/communicate phases.\n";
    return 0;
}
