/**
 * @file
 * Ablation A4 — mesh vs torus under the full application stack.
 *
 * The paper's surrounding literature evaluates both 2-D meshes and
 * tori (e.g. the virtual-channel study it cites). Because the
 * characterization pipeline is topology-agnostic, the same
 * applications run unchanged on a 4x4 mesh and a 4x4 torus (2 VCs,
 * dateline deadlock avoidance): the torus shortens paths and the
 * spatial attribute's hop profile shifts accordingly.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "common.hh"

namespace {

using namespace cchar;

std::unique_ptr<apps::SharedMemoryApp>
makeApp(const std::string &name)
{
    if (name == "1d-fft")
        return std::make_unique<apps::Fft1D>();
    if (name == "is")
        return std::make_unique<apps::IntegerSort>();
    return std::make_unique<apps::Nbody>();
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"ablation_topology"};
    std::cout << "A4: topology ablation — 4x4 mesh vs 4x4 torus "
                 "(2 VCs, dateline)\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::setw(8)
              << "topo" << std::right << std::setw(9) << "msgs"
              << std::setw(10) << "avgHops" << std::setw(12)
              << "latency" << std::setw(12) << "contention"
              << std::setw(12) << "makespan"
              << "\n";
    std::cout << std::string(73, '-') << "\n";

    for (const std::string &name :
         {std::string{"1d-fft"}, std::string{"is"},
          std::string{"nbody"}}) {
        for (bool torus : {false, true}) {
            ccnuma::MachineConfig cfg = bench::standardMachine();
            if (torus) {
                cfg.mesh.topology = mesh::Topology::Torus;
                cfg.mesh.virtualChannels = 2;
            }
            auto app = makeApp(name);
            core::CharacterizationPipeline pipeline;
            auto report = pipeline.runDynamic(*app, cfg);
            std::cout << std::left << std::setw(10) << name
                      << std::setw(8) << (torus ? "torus" : "mesh")
                      << std::right << std::setw(9)
                      << report.volume.messageCount << std::setw(10)
                      << std::fixed << std::setprecision(2)
                      << report.network.avgHops << std::setw(12)
                      << std::setprecision(4)
                      << report.network.latencyMean << std::setw(12)
                      << report.network.contentionMean << std::setw(12)
                      << std::setprecision(1) << report.network.makespan
                      << (report.verified ? "" : "  [VERIFY FAILED]")
                      << "\n";
        }
        std::cout << "\n";
    }
    std::cout << "Expected shape: the torus cuts the average hop "
                 "count and latency; identical message counts "
                 "(the protocol is topology independent).\n";
    return 0;
}
