/**
 * @file
 * Experiment F9 — the paper's Figure 9 phenomenon for 3D-FFT on 8
 * processors: "the application uses processor p0 as the root of all
 * the broadcast calls resulting in processor p0 being the favorite.
 * However, the volume distribution is uniform for all the
 * processors."
 *
 * Prints, for each source, the message-COUNT distribution and the
 * byte-VOLUME distribution over destinations side by side. The shape
 * to observe: count peaks at destination 0, volume is flat.
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

int
main()
{
    cchar::bench::SelfReport selfReport{"fig9_volume_3dfft"};
    using namespace cchar;
    using namespace cchar::bench;

    // Run 3D-FFT with extra iterations to emphasize the broadcasts.
    apps::Fft3D::Params params;
    params.nx = params.ny = params.nz = 16;
    params.iterations = 4;
    apps::Fft3D app{params};
    core::CharacterizationPipeline pipeline;
    mp::MpConfig world = standardWorld();
    auto report = pipeline.runStatic(app, world);

    std::cout << "F9: 3D-FFT (8 procs) — message count vs byte volume "
                 "distribution per source\n";
    std::cout << "verified: " << (report.verified ? "yes" : "NO")
              << ", " << report.volume.messageCount << " messages\n\n";

    // Recover the per-destination byte volumes from a fresh traced
    // run (the report keeps counts; volumes need the raw log).
    apps::Fft3D app2{params};
    desim::Simulator sim;
    mp::MpWorld w{sim, world};
    apps::launch(w, app2);
    w.run();
    const auto &log = w.log();

    for (int src = 0; src < 8; ++src) {
        auto counts = log.destinationCounts(src);
        auto bytes = log.destinationBytes(src);
        double totalCount = 0.0, totalBytes = 0.0;
        for (int d = 0; d < 8; ++d) {
            totalCount += counts[static_cast<std::size_t>(d)];
            totalBytes += bytes[static_cast<std::size_t>(d)];
        }
        if (totalCount == 0.0)
            continue;
        std::cout << "p" << src << ":  dest     count%   volume%\n";
        for (int d = 0; d < 8; ++d) {
            std::cout << "      " << std::setw(4) << d << std::setw(10)
                      << std::fixed << std::setprecision(1)
                      << counts[static_cast<std::size_t>(d)] /
                             totalCount * 100.0
                      << std::setw(10)
                      << bytes[static_cast<std::size_t>(d)] /
                             totalBytes * 100.0
                      << "\n";
        }
        std::cout << "\n";
    }

    std::cout << "Expected shape: count%% favors destination 0 "
                 "(broadcast acks), volume%% near-uniform "
                 "(all-to-all transpose dominates bytes).\n";
    return 0;
}
