/**
 * @file
 * Ablation A3 — execution-driven feedback vs open-loop replay.
 *
 * The paper insists on execution-driven simulation for shared-memory
 * applications: "as each communication event is generated there is
 * also a feedback from the network simulator to the event generator".
 * This ablation takes the traffic of a dynamic run, converts it to a
 * per-source trace using the execution-driven injection times, and
 * replays it (a) open-loop — re-injecting at the recorded offsets —
 * and (b) blocking on delivery. Open-loop replay reproduces the
 * original network behaviour almost exactly *because* the recorded
 * injection times already embody the feedback; blocking replay adds
 * artificial per-source serialization and underestimates contention.
 * The flip side is the paper's argument: without execution-driven
 * feedback those injection times could not have been produced in the
 * first place.
 */

#include <iomanip>
#include <iostream>
#include <memory>

#include "common.hh"

namespace {

using namespace cchar;

/** Convert a network log into a per-source sinceLast trace. */
trace::Trace
logToTrace(const trace::TrafficLog &log)
{
    trace::Trace t{log.nprocs()};
    std::vector<double> lastInject(
        static_cast<std::size_t>(log.nprocs()), 0.0);
    // Records are in injection order per source already (the log is
    // appended at delivery; sort by injection first).
    std::vector<trace::MessageRecord> recs = log.records();
    std::sort(recs.begin(), recs.end(),
              [](const auto &a, const auto &b) {
                  return a.injectTime < b.injectTime;
              });
    for (const auto &r : recs) {
        trace::TraceEvent ev;
        ev.src = r.src;
        ev.dst = r.dst;
        ev.bytes = r.bytes;
        ev.kind = r.kind;
        ev.sinceLast =
            r.injectTime - lastInject[static_cast<std::size_t>(r.src)];
        lastInject[static_cast<std::size_t>(r.src)] = r.injectTime;
        t.add(ev);
    }
    return t;
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"ablation_feedback"};
    using namespace cchar::bench;

    std::cout << "A3: execution-driven feedback vs trace replay of "
                 "the same traffic\n\n";
    std::cout << std::left << std::setw(10) << "app" << std::right
              << std::setw(12) << "exec-lat" << std::setw(12)
              << "block-lat" << std::setw(12) << "open-lat"
              << std::setw(12) << "exec-cont" << std::setw(12)
              << "block-cont" << std::setw(12) << "open-cont"
              << "\n";
    std::cout << std::string(82, '-') << "\n";

    core::CharacterizationPipeline pipeline;
    for (const std::string &name :
         {std::string{"1d-fft"}, std::string{"is"},
          std::string{"nbody"}}) {
        // Execution-driven run (with feedback).
        desim::Simulator sim;
        ccnuma::Machine machine{sim, standardMachine()};
        std::unique_ptr<apps::SharedMemoryApp> app;
        if (name == "1d-fft")
            app = std::make_unique<apps::Fft1D>();
        else if (name == "is")
            app = std::make_unique<apps::IntegerSort>();
        else
            app = std::make_unique<apps::Nbody>();
        apps::launch(machine, *app);
        machine.run();
        double execLat = machine.network().latencyStats().mean();
        double execCont = machine.network().contentionStats().mean();

        // Replays of the identical traffic.
        trace::Trace t = logToTrace(machine.log());
        auto blocking =
            core::TraceReplayer::replay(t, standardMachine().mesh, true);
        auto open =
            core::TraceReplayer::replay(t, standardMachine().mesh, false);

        std::cout << std::left << std::setw(10) << name << std::right
                  << std::fixed << std::setprecision(4) << std::setw(12)
                  << execLat << std::setw(12) << blocking.latencyMean
                  << std::setw(12) << open.latencyMean << std::setw(12)
                  << execCont << std::setw(12)
                  << blocking.contentionMean << std::setw(12)
                  << open.contentionMean << "\n";
    }
    std::cout << "\nExpected shape: open-loop replay of the "
                 "feedback-derived injection times tracks the "
                 "execution-driven run; blocking replay serializes "
                 "each source and underestimates contention.\n";
    return 0;
}
