/**
 * @file
 * Experiment P1 — engineering microbenchmarks (google-benchmark):
 * simulation-kernel event throughput, mesh message throughput, and
 * distribution-fitter cost. Not a paper experiment; tracks the
 * simulator's own performance.
 */

#include <benchmark/benchmark.h>

#include "desim/desim.hh"
#include "mesh/mesh.hh"
#include "stats/stats.hh"

#include "self_report.hh"

namespace {

using namespace cchar;

void
BM_DesimEventThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        desim::Simulator sim;
        sim.spawn([](desim::Simulator &s) -> desim::Task<void> {
            for (int i = 0; i < 10000; ++i)
                co_await s.delay(1.0);
        }(sim));
        sim.run();
        benchmark::DoNotOptimize(sim.processedEvents());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DesimEventThroughput);

void
BM_MeshMessageThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        desim::Simulator sim;
        mesh::MeshConfig cfg;
        cfg.width = 4;
        cfg.height = 4;
        mesh::MeshNetwork net{sim, cfg};
        for (int node = 0; node < 16; ++node) {
            sim.spawn([](mesh::MeshNetwork *n,
                         int node2) -> desim::Task<void> {
                for (;;)
                    (void)co_await n->rxQueue(node2).receive();
            }(&net, node));
        }
        sim.spawn([](mesh::MeshNetwork *n) -> desim::Task<void> {
            stats::Rng rng{3};
            for (int i = 0; i < 2000; ++i) {
                int src = static_cast<int>(rng.below(16));
                int dst = static_cast<int>(rng.below(16));
                if (src == dst)
                    continue;
                mesh::Packet pkt;
                pkt.src = src;
                pkt.dst = dst;
                pkt.bytes = 32;
                (void)co_await n->transfer(std::move(pkt));
            }
        }(&net));
        sim.run();
        benchmark::DoNotOptimize(net.messageCount());
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MeshMessageThroughput);

void
BM_FitterBestFit(benchmark::State &state)
{
    stats::Rng rng{1};
    stats::HyperExponential2 truth{0.3, 3.0, 0.4};
    std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
    for (auto &x : xs)
        x = truth.sample(rng);
    stats::DistributionFitter fitter;
    for (auto _ : state) {
        auto best = fitter.bestFit(xs);
        benchmark::DoNotOptimize(best.gof.r2);
    }
}
BENCHMARK(BM_FitterBestFit)->Arg(1000)->Arg(10000);

} // namespace

// Expanded BENCHMARK_MAIN() so the SelfReport registry wraps the runs.
int
main(int argc, char **argv)
{
    cchar::bench::SelfReport selfReport{"perf_micro"};
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
