/**
 * @file
 * Experiment P1 — engineering microbenchmarks (google-benchmark):
 * simulation-kernel event throughput, mesh message throughput, and
 * distribution-fitter cost. Not a paper experiment; tracks the
 * simulator's own performance.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>

#include "apps/registry.hh"
#include "core/core.hh"
#include "desim/desim.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "mesh/mesh.hh"
#include "obs/obs.hh"
#include "obs/sampler.hh"
#include "stats/stats.hh"
#include "sweep/engine.hh"
#include "sweep/spec.hh"

#include "self_report.hh"

namespace {

using namespace cchar;

void
BM_DesimEventThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        desim::Simulator sim;
        sim.spawn([](desim::Simulator &s) -> desim::Task<void> {
            for (int i = 0; i < 10000; ++i)
                co_await s.delay(1.0);
        }(sim));
        sim.run();
        benchmark::DoNotOptimize(sim.processedEvents());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DesimEventThroughput);

void
BM_MeshMessageThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        desim::Simulator sim;
        mesh::MeshConfig cfg;
        cfg.width = 4;
        cfg.height = 4;
        mesh::MeshNetwork net{sim, cfg};
        for (int node = 0; node < 16; ++node) {
            sim.spawn([](mesh::MeshNetwork *n,
                         int node2) -> desim::Task<void> {
                for (;;)
                    (void)co_await n->rxQueue(node2).receive();
            }(&net, node));
        }
        sim.spawn([](mesh::MeshNetwork *n) -> desim::Task<void> {
            stats::Rng rng{3};
            for (int i = 0; i < 2000; ++i) {
                int src = static_cast<int>(rng.below(16));
                int dst = static_cast<int>(rng.below(16));
                if (src == dst)
                    continue;
                mesh::Packet pkt;
                pkt.src = src;
                pkt.dst = dst;
                pkt.bytes = 32;
                (void)co_await n->transfer(std::move(pkt));
            }
        }(&net));
        sim.run();
        benchmark::DoNotOptimize(net.messageCount());
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MeshMessageThroughput);

void
BM_FitterBestFit(benchmark::State &state)
{
    stats::Rng rng{1};
    stats::HyperExponential2 truth{0.3, 3.0, 0.4};
    std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
    for (auto &x : xs)
        x = truth.sample(rng);
    stats::DistributionFitter fitter;
    for (auto _ : state) {
        auto best = fitter.bestFit(xs);
        benchmark::DoNotOptimize(best.gof.r2);
    }
}
BENCHMARK(BM_FitterBestFit)->Arg(1000)->Arg(10000);

/**
 * One mesh workload run for the checkpoint-overhead probe, optionally
 * with a periodic windowed-telemetry sampler ("checkpointing" the
 * network counters every 50us of simulated time) attached.
 *
 * @return wall seconds spent inside sim.run().
 */
double
ckptWorkload(bool withSampler)
{
    desim::Simulator sim;
    mesh::MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    mesh::MeshNetwork net{sim, cfg};
    obs::WindowedSampler sampler;
    if (withSampler) {
        sampler.addSeries("messages", [&net] {
            return static_cast<double>(net.messageCount());
        });
        sampler.addSeries("events", [&sim] {
            return static_cast<double>(sim.processedEvents());
        });
        sim.attachPeriodic([&sampler](double t) { sampler.sample(t); },
                           50.0);
    }
    for (int node = 0; node < 16; ++node) {
        sim.spawn([](mesh::MeshNetwork *n, int node2) -> desim::Task<void> {
            for (;;)
                (void)co_await n->rxQueue(node2).receive();
        }(&net, node));
    }
    sim.spawn([](mesh::MeshNetwork *n) -> desim::Task<void> {
        stats::Rng rng{17};
        for (int i = 0; i < 4000; ++i) {
            int src = static_cast<int>(rng.below(16));
            int dst = static_cast<int>(rng.below(16));
            if (src == dst)
                continue;
            mesh::Packet pkt;
            pkt.src = src;
            pkt.dst = dst;
            pkt.bytes = 32;
            (void)co_await n->transfer(std::move(pkt));
        }
    }(&net));
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Checkpoint (periodic telemetry) overhead, measured honestly:
 *
 *  - both variants run in the *same process* after shared warm-up
 *    passes, so neither side pays the cold-start (page faults, pool
 *    growth) the other skipped — the old cross-process comparison is
 *    what produced a nonsense negative overhead;
 *  - min-of-N wall times on each side discard scheduler noise;
 *  - the baseline's own rep-to-rep spread is the measurement
 *    resolution: a delta smaller than that (including any negative
 *    delta) is indistinguishable from noise, reported as 0 with the
 *    noise flag set.
 */
void
reportCkptOverhead(cchar::bench::SelfReport &report)
{
    constexpr int kReps = 7;
    ckptWorkload(false); // warm-up: allocator, frame pools, code paths
    ckptWorkload(true);

    double base = 0.0, baseMax = 0.0, ckpt = 0.0;
    for (int i = 0; i < kReps; ++i) {
        // Interleaved so slow drift (thermal, cgroup) hits both sides.
        double b = ckptWorkload(false);
        double c = ckptWorkload(true);
        base = i == 0 ? b : std::min(base, b);
        baseMax = i == 0 ? b : std::max(baseMax, b);
        ckpt = i == 0 ? c : std::min(ckpt, c);
    }
    double overheadPct = (ckpt - base) / base * 100.0;
    double resolutionPct = (baseMax - base) / base * 100.0;
    bool noise = overheadPct < resolutionPct;
    if (noise && overheadPct < 0.0)
        overheadPct = 0.0;
    report.extra("ckpt_overhead_pct", overheadPct);
    report.extra("ckpt_resolution_pct", resolutionPct);
    report.extraFlag("ckpt_overhead_noise", noise);
    std::cerr << "[bench] perf_micro: ckpt overhead " << overheadPct
              << "% (resolution " << resolutionPct << "%"
              << (noise ? ", below noise floor" : "") << ")\n";
}

/**
 * One mesh workload run for the link-stats overhead probe.
 *
 * Modes map onto the three states the production code can be in:
 *  0  plain: no ambient observability scope at all;
 *  1  flag-off: a ScopedObservability is installed but carries no
 *     link sink — the default CLI path, whose only possible cost is
 *     the dormant null-checked hooks in the mesh hot path;
 *  2  flag-on: a LinkStatsTracker is installed and every lane
 *     acquire/release/hop pays the recording cost.
 *
 * @return wall seconds spent inside sim.run().
 */
double
linkWorkload(int mode)
{
    desim::Simulator sim;
    obs::LinkStatsTracker tracker;
    std::optional<obs::ScopedObservability> scope;
    if (mode == 1)
        scope.emplace(nullptr, nullptr, nullptr, nullptr, nullptr);
    else if (mode == 2)
        scope.emplace(nullptr, nullptr, nullptr, nullptr, &tracker);
    mesh::MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    mesh::MeshNetwork net{sim, cfg}; // after scope: caches the sink
    for (int node = 0; node < 16; ++node) {
        sim.spawn([](mesh::MeshNetwork *n, int node2) -> desim::Task<void> {
            for (;;)
                (void)co_await n->rxQueue(node2).receive();
        }(&net, node));
    }
    sim.spawn([](mesh::MeshNetwork *n) -> desim::Task<void> {
        stats::Rng rng{23};
        for (int i = 0; i < 4000; ++i) {
            int src = static_cast<int>(rng.below(16));
            int dst = static_cast<int>(rng.below(16));
            if (src == dst)
                continue;
            mesh::Packet pkt;
            pkt.src = src;
            pkt.dst = dst;
            pkt.bytes = 32;
            (void)co_await n->transfer(std::move(pkt));
        }
    }(&net));
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    if (mode == 2)
        tracker.finish(sim.now());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Link-stats (network weather) overhead, same protocol as the
 * checkpoint probe: shared warm-up, interleaved min-of-N reps, the
 * plain baseline's own spread as the measurement resolution.
 *
 * Two results matter downstream:
 *  - link_stats_overhead_pct: flag-on over flag-off — the price of
 *    actually recording per-link facts;
 *  - link_stats_off_within_noise: the flag-off path (dormant hooks)
 *    must stay within the noise floor of the plain run. This is the
 *    zero-perturbation guarantee as a measurement; bench_compare.py
 *    hard-fails when it is false.
 */
void
reportLinkStatsOverhead(cchar::bench::SelfReport &report)
{
    constexpr int kReps = 7;
    linkWorkload(0); // warm-up: allocator, frame pools, code paths
    linkWorkload(1);
    linkWorkload(2);

    double ref = 0.0, refMax = 0.0, off = 0.0, on = 0.0;
    for (int i = 0; i < kReps; ++i) {
        // Interleaved so slow drift (thermal, cgroup) hits all sides.
        double r = linkWorkload(0);
        double f = linkWorkload(1);
        double n = linkWorkload(2);
        ref = i == 0 ? r : std::min(ref, r);
        refMax = i == 0 ? r : std::max(refMax, r);
        off = i == 0 ? f : std::min(off, f);
        on = i == 0 ? n : std::min(on, n);
    }
    double resolutionPct = (refMax - ref) / ref * 100.0;
    double offPct = (off - ref) / ref * 100.0;
    double onPct = (on - off) / off * 100.0;
    bool onNoise = onPct < resolutionPct;
    if (onNoise && onPct < 0.0)
        onPct = 0.0;
    // 2% floor: min-of-N spreads on a quiet machine can shrink below
    // what rep-to-rep scheduling jitter actually is.
    bool offWithinNoise = offPct <= std::max(resolutionPct, 2.0);
    report.extra("link_stats_overhead_pct", onPct);
    report.extra("link_stats_off_pct", offPct);
    report.extra("link_stats_resolution_pct", resolutionPct);
    report.extraFlag("link_stats_overhead_noise", onNoise);
    report.extraFlag("link_stats_off_within_noise", offWithinNoise);
    std::cerr << "[bench] perf_micro: link-stats overhead " << onPct
              << "% on/off, flag-off " << offPct
              << "% vs plain (resolution " << resolutionPct << "%"
              << (onNoise ? ", below noise floor" : "") << ")\n";
}

/**
 * One mesh workload run for the reroute-path overhead probe.
 *
 * Modes map onto the three states the routing hot path can be in:
 *  0  fault-free: no injector, no fault branch is ever reached —
 *     byte-identical to a build without the fault layer;
 *  1  armed, static routing: an injector with a link-down clause is
 *     installed but adaptive routing is off (--no-reroute). Every hop
 *     pays the pre-existing tail-drop and router-stall probes;
 *  2  armed, adaptive routing: same injector with the default
 *     adaptive routing on, so every transfer additionally prescans
 *     its dimension-ordered route for down links at injection time.
 *
 * In the armed modes the clause's window sits far beyond the
 * simulated horizon, so no drop or reroute ever fires and the
 * simulated behaviour stays identical to mode 0: what is measured is
 * exactly the price of the dormant checks, and mode 2 minus mode 1
 * isolates what the adaptive-routing prescan adds on top.
 *
 * @return wall seconds spent inside sim.run().
 */
double
rerouteWorkload(int mode)
{
    desim::Simulator sim;
    std::optional<fault::FaultInjector> inj;
    mesh::MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    if (mode != 0) {
        // Window opens ~17 simulated minutes in: linksConfigured() is
        // true (checks run per packet) but linkDown() never is.
        inj.emplace(fault::FaultPlan::parse(
            "seed=1; link:0->1:down@[1e9us,2e9us]"));
        cfg.faults = &*inj;
        cfg.adaptiveRouting = mode == 2;
    }
    mesh::MeshNetwork net{sim, cfg};
    for (int node = 0; node < 16; ++node) {
        sim.spawn([](mesh::MeshNetwork *n, int node2) -> desim::Task<void> {
            for (;;)
                (void)co_await n->rxQueue(node2).receive();
        }(&net, node));
    }
    sim.spawn([](mesh::MeshNetwork *n) -> desim::Task<void> {
        stats::Rng rng{29};
        for (int i = 0; i < 4000; ++i) {
            int src = static_cast<int>(rng.below(16));
            int dst = static_cast<int>(rng.below(16));
            if (src == dst)
                continue;
            mesh::Packet pkt;
            pkt.src = src;
            pkt.dst = dst;
            pkt.bytes = 32;
            (void)co_await n->transfer(std::move(pkt));
        }
    }(&net));
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Reroute-path (adaptive routing) overhead, same protocol as the
 * other probes: shared warm-up, interleaved min-of-N reps, the
 * fault-free baseline's own spread as the measurement resolution.
 *
 * Two results matter downstream:
 *  - fault_arm_pct: the armed-but-static fault machinery (tail-drop
 *    and stall probes on every hop) over fault-free — pre-existing
 *    cost, reported for visibility but not gated: it is only paid
 *    when a fault plan is explicitly installed;
 *  - reroute_overhead_within_noise: turning adaptive routing on must
 *    cost nothing measurable over the same armed-static run. Actual
 *    reroutes around a down link are degraded operation and may cost
 *    whatever the detour costs; the prescan every packet pays on a
 *    healthy (if armed) network is not allowed to. bench_compare.py
 *    hard-fails when the flag is false.
 */
void
reportRerouteOverhead(cchar::bench::SelfReport &report)
{
    constexpr int kReps = 7;
    rerouteWorkload(0); // warm-up: allocator, frame pools, code paths
    rerouteWorkload(1);
    rerouteWorkload(2);

    double ref = 0.0, arm = 0.0, armMax = 0.0, ad = 0.0;
    for (int i = 0; i < kReps; ++i) {
        // Interleaved so slow drift (thermal, cgroup) hits all sides.
        double r = rerouteWorkload(0);
        double s = rerouteWorkload(1);
        double a = rerouteWorkload(2);
        ref = i == 0 ? r : std::min(ref, r);
        arm = i == 0 ? s : std::min(arm, s);
        armMax = i == 0 ? s : std::max(armMax, s);
        ad = i == 0 ? a : std::min(ad, a);
    }
    // The armed-static side is the baseline the gated delta is taken
    // against, so its own spread is the measurement resolution here.
    double resolutionPct = (armMax - arm) / arm * 100.0;
    double armPct = (arm - ref) / ref * 100.0;
    double overheadPct = (ad - arm) / arm * 100.0;
    bool noise = overheadPct < resolutionPct;
    if (noise && overheadPct < 0.0)
        overheadPct = 0.0;
    // Same 2% floor as the link-stats probe: min-of-N spreads on a
    // quiet machine can shrink below real scheduling jitter.
    bool withinNoise = overheadPct <= std::max(resolutionPct, 2.0);
    report.extra("fault_arm_pct", armPct);
    report.extra("reroute_overhead_pct", overheadPct);
    report.extra("reroute_resolution_pct", resolutionPct);
    report.extraFlag("reroute_overhead_noise", noise);
    report.extraFlag("reroute_overhead_within_noise", withinNoise);
    std::cerr << "[bench] perf_micro: reroute prescan overhead "
              << overheadPct << "% adaptive vs static on an armed "
              << "network, arming itself " << armPct
              << "% vs fault-free (resolution " << resolutionPct << "%"
              << (noise ? ", below noise floor" : "") << ")\n";
}

/**
 * One four-job sweep for the journal-overhead probe, optionally with
 * the durable job journal attached. The journal's cost per job is one
 * record format + one O_APPEND write + one fdatasync, paid between
 * jobs — never inside the simulation — so it should amortize to a few
 * percent against real job runtimes.
 *
 * @return wall seconds for the whole sweep run.
 */
double
journalWorkload(bool withJournal, const std::string &path)
{
    sweep::SweepSpec spec;
    spec.apps = {"is"};
    spec.procs = {4};
    spec.loads = {0.2};
    spec.seeds = {1, 2, 3, 4};
    sweep::SweepRunOptions opts;
    opts.workers = 1;
    if (withJournal)
        opts.journalPath = path;
    auto t0 = std::chrono::steady_clock::now();
    sweep::SweepResult result = sweep::SweepEngine{spec}.run(opts);
    benchmark::DoNotOptimize(result.failures());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Durable-journal overhead, same protocol as the other probes: shared
 * warm-up, interleaved min-of-N reps, the journal-off baseline's own
 * spread as the measurement resolution.
 *
 * The within-noise floor is max(resolution, 5%) rather than the
 * link-stats probe's 2%: each journal append carries a real fsync,
 * and fsync latency on CI-grade storage is too erratic to gate
 * tighter without flaking — the guarantee worth enforcing is
 * "journaling stays in the single-digit percent range", not "fsync
 * is free". bench_compare.py hard-fails the flag when it goes false.
 */
void
reportJournalOverhead(cchar::bench::SelfReport &report)
{
    constexpr int kReps = 7;
    const std::string path = "bench_journal_probe.jsonl";
    journalWorkload(false, path); // warm-up
    journalWorkload(true, path);

    double base = 0.0, baseMax = 0.0, jrnl = 0.0;
    for (int i = 0; i < kReps; ++i) {
        // Interleaved so slow drift (thermal, cgroup) hits both sides.
        double b = journalWorkload(false, path);
        double j = journalWorkload(true, path);
        base = i == 0 ? b : std::min(base, b);
        baseMax = i == 0 ? b : std::max(baseMax, b);
        jrnl = i == 0 ? j : std::min(jrnl, j);
    }
    std::remove(path.c_str());
    double resolutionPct = (baseMax - base) / base * 100.0;
    double overheadPct = (jrnl - base) / base * 100.0;
    bool noise = overheadPct < resolutionPct;
    if (noise && overheadPct < 0.0)
        overheadPct = 0.0;
    bool withinNoise = overheadPct <= std::max(resolutionPct, 5.0);
    report.extra("journal_overhead_pct", overheadPct);
    report.extra("journal_resolution_pct", resolutionPct);
    report.extraFlag("journal_overhead_noise", noise);
    report.extraFlag("journal_overhead_within_noise", withinNoise);
    std::cerr << "[bench] perf_micro: journal overhead " << overheadPct
              << "% (resolution " << resolutionPct << "%"
              << (noise ? ", below noise floor" : "") << ")\n";
}

/**
 * Synthetic-generator throughput: messages per wall second of
 * SyntheticTrafficGenerator::run on a model fitted from a real `is`
 * characterization, rescaled to a fixed 100k-message budget so every
 * rep (and every machine) does identical work. Min-of-N discards
 * scheduler noise; the resulting synth_messages_per_sec rate is
 * tracked by bench_compare.py like the kernel throughput rates —
 * model replay "at scale" is only usable while millions of messages
 * stay in seconds, so a silent generator slowdown must surface here.
 */
void
reportSynthThroughput(cchar::bench::SelfReport &report)
{
    constexpr int kReps = 7;
    constexpr std::size_t kMessages = 100000;

    auto app = apps::makeSharedMemoryApp("is");
    ccnuma::MachineConfig mcfg;
    mcfg.mesh.width = 4;
    mcfg.mesh.height = 4;
    core::CharacterizationPipeline pipeline;
    core::CharacterizationReport seed = pipeline.runDynamic(*app, mcfg);
    core::SyntheticModel model =
        core::SyntheticModel::fromReport(seed).scaleTo(0, kMessages);

    auto once = [&model] {
        auto t0 = std::chrono::steady_clock::now();
        core::DriveResult r = core::SyntheticTrafficGenerator::run(
            model, core::SynthRunOptions{});
        benchmark::DoNotOptimize(r.makespan);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    once(); // warm-up: allocator, frame pools, code paths
    double best = 0.0;
    for (int i = 0; i < kReps; ++i) {
        double t = once();
        best = i == 0 ? t : std::min(best, t);
    }
    double rate = static_cast<double>(model.totalMessages()) / best;
    report.extra("synth_messages_per_sec", rate);
    std::cerr << "[bench] perf_micro: synth throughput " << rate
              << " msgs/s (" << model.totalMessages()
              << " messages, min of " << kReps << ")\n";
}

} // namespace

// Expanded BENCHMARK_MAIN() so the SelfReport registry wraps the runs.
int
main(int argc, char **argv)
{
    cchar::bench::SelfReport selfReport{"perf_micro"};
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    reportCkptOverhead(selfReport);
    reportLinkStatsOverhead(selfReport);
    reportRerouteOverhead(selfReport);
    reportJournalOverhead(selfReport);
    reportSynthThroughput(selfReport);
    // Event/message totals scale with google-benchmark's adaptive
    // iteration counts, so only the rate fields are comparable runs.
    selfReport.extraFlag("counts_deterministic", false);
    benchmark::Shutdown();
    return 0;
}
