/**
 * @file
 * Experiment P1 — engineering microbenchmarks (google-benchmark):
 * simulation-kernel event throughput, mesh message throughput, and
 * distribution-fitter cost. Not a paper experiment; tracks the
 * simulator's own performance.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "desim/desim.hh"
#include "mesh/mesh.hh"
#include "obs/sampler.hh"
#include "stats/stats.hh"

#include "self_report.hh"

namespace {

using namespace cchar;

void
BM_DesimEventThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        desim::Simulator sim;
        sim.spawn([](desim::Simulator &s) -> desim::Task<void> {
            for (int i = 0; i < 10000; ++i)
                co_await s.delay(1.0);
        }(sim));
        sim.run();
        benchmark::DoNotOptimize(sim.processedEvents());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DesimEventThroughput);

void
BM_MeshMessageThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        desim::Simulator sim;
        mesh::MeshConfig cfg;
        cfg.width = 4;
        cfg.height = 4;
        mesh::MeshNetwork net{sim, cfg};
        for (int node = 0; node < 16; ++node) {
            sim.spawn([](mesh::MeshNetwork *n,
                         int node2) -> desim::Task<void> {
                for (;;)
                    (void)co_await n->rxQueue(node2).receive();
            }(&net, node));
        }
        sim.spawn([](mesh::MeshNetwork *n) -> desim::Task<void> {
            stats::Rng rng{3};
            for (int i = 0; i < 2000; ++i) {
                int src = static_cast<int>(rng.below(16));
                int dst = static_cast<int>(rng.below(16));
                if (src == dst)
                    continue;
                mesh::Packet pkt;
                pkt.src = src;
                pkt.dst = dst;
                pkt.bytes = 32;
                (void)co_await n->transfer(std::move(pkt));
            }
        }(&net));
        sim.run();
        benchmark::DoNotOptimize(net.messageCount());
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MeshMessageThroughput);

void
BM_FitterBestFit(benchmark::State &state)
{
    stats::Rng rng{1};
    stats::HyperExponential2 truth{0.3, 3.0, 0.4};
    std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
    for (auto &x : xs)
        x = truth.sample(rng);
    stats::DistributionFitter fitter;
    for (auto _ : state) {
        auto best = fitter.bestFit(xs);
        benchmark::DoNotOptimize(best.gof.r2);
    }
}
BENCHMARK(BM_FitterBestFit)->Arg(1000)->Arg(10000);

/**
 * One mesh workload run for the checkpoint-overhead probe, optionally
 * with a periodic windowed-telemetry sampler ("checkpointing" the
 * network counters every 50us of simulated time) attached.
 *
 * @return wall seconds spent inside sim.run().
 */
double
ckptWorkload(bool withSampler)
{
    desim::Simulator sim;
    mesh::MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    mesh::MeshNetwork net{sim, cfg};
    obs::WindowedSampler sampler;
    if (withSampler) {
        sampler.addSeries("messages", [&net] {
            return static_cast<double>(net.messageCount());
        });
        sampler.addSeries("events", [&sim] {
            return static_cast<double>(sim.processedEvents());
        });
        sim.attachPeriodic([&sampler](double t) { sampler.sample(t); },
                           50.0);
    }
    for (int node = 0; node < 16; ++node) {
        sim.spawn([](mesh::MeshNetwork *n, int node2) -> desim::Task<void> {
            for (;;)
                (void)co_await n->rxQueue(node2).receive();
        }(&net, node));
    }
    sim.spawn([](mesh::MeshNetwork *n) -> desim::Task<void> {
        stats::Rng rng{17};
        for (int i = 0; i < 4000; ++i) {
            int src = static_cast<int>(rng.below(16));
            int dst = static_cast<int>(rng.below(16));
            if (src == dst)
                continue;
            mesh::Packet pkt;
            pkt.src = src;
            pkt.dst = dst;
            pkt.bytes = 32;
            (void)co_await n->transfer(std::move(pkt));
        }
    }(&net));
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Checkpoint (periodic telemetry) overhead, measured honestly:
 *
 *  - both variants run in the *same process* after shared warm-up
 *    passes, so neither side pays the cold-start (page faults, pool
 *    growth) the other skipped — the old cross-process comparison is
 *    what produced a nonsense negative overhead;
 *  - min-of-N wall times on each side discard scheduler noise;
 *  - the baseline's own rep-to-rep spread is the measurement
 *    resolution: a delta smaller than that (including any negative
 *    delta) is indistinguishable from noise, reported as 0 with the
 *    noise flag set.
 */
void
reportCkptOverhead(cchar::bench::SelfReport &report)
{
    constexpr int kReps = 7;
    ckptWorkload(false); // warm-up: allocator, frame pools, code paths
    ckptWorkload(true);

    double base = 0.0, baseMax = 0.0, ckpt = 0.0;
    for (int i = 0; i < kReps; ++i) {
        // Interleaved so slow drift (thermal, cgroup) hits both sides.
        double b = ckptWorkload(false);
        double c = ckptWorkload(true);
        base = i == 0 ? b : std::min(base, b);
        baseMax = i == 0 ? b : std::max(baseMax, b);
        ckpt = i == 0 ? c : std::min(ckpt, c);
    }
    double overheadPct = (ckpt - base) / base * 100.0;
    double resolutionPct = (baseMax - base) / base * 100.0;
    bool noise = overheadPct < resolutionPct;
    if (noise && overheadPct < 0.0)
        overheadPct = 0.0;
    report.extra("ckpt_overhead_pct", overheadPct);
    report.extra("ckpt_resolution_pct", resolutionPct);
    report.extraFlag("ckpt_overhead_noise", noise);
    std::cerr << "[bench] perf_micro: ckpt overhead " << overheadPct
              << "% (resolution " << resolutionPct << "%"
              << (noise ? ", below noise floor" : "") << ")\n";
}

} // namespace

// Expanded BENCHMARK_MAIN() so the SelfReport registry wraps the runs.
int
main(int argc, char **argv)
{
    cchar::bench::SelfReport selfReport{"perf_micro"};
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    reportCkptOverhead(selfReport);
    // Event/message totals scale with google-benchmark's adaptive
    // iteration counts, so only the rate fields are comparable runs.
    selfReport.extraFlag("counts_deterministic", false);
    benchmark::Shutdown();
    return 0;
}
