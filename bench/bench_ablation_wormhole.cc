/**
 * @file
 * Ablation A1 — wormhole channel-holding discipline.
 *
 * The network model holds every channel of a message's path until the
 * tail drains (the paper-era CSIM wormhole model). The ablation
 * compares it against early per-hop release (a virtual-cut-through
 * approximation) on the same synthetic load, at increasing injection
 * rates — quantifying how much of the reported contention comes from
 * the holding discipline.
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

namespace {

using namespace cchar;

struct LoadResult
{
    double latencyMean;
    double contentionMean;
    double utilization;
};

LoadResult
runLoad(mesh::ChannelHolding holding, double rate_per_node)
{
    desim::Simulator sim;
    mesh::MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.holding = holding;
    trace::TrafficLog log;
    mesh::MeshNetwork net{sim, cfg, &log};
    stats::Rng seedRng{7};
    for (int node = 0; node < 16; ++node) {
        sim.spawn(
            [](mesh::MeshNetwork *n, int src, double rate,
               std::uint64_t seed) -> desim::Task<void> {
                stats::Rng rng{seed};
                for (int i = 0; i < 400; ++i) {
                    co_await n->sim().delay(rng.exponential(rate));
                    int dst = static_cast<int>(rng.below(16));
                    if (dst == src)
                        dst = (dst + 1) % 16;
                    mesh::Packet pkt;
                    pkt.src = src;
                    pkt.dst = dst;
                    pkt.bytes = 32;
                    n->post(std::move(pkt));
                }
            }(&net, node, rate_per_node, seedRng.raw()),
            "load");
        sim.spawn(
            [](mesh::MeshNetwork *n, int node2) -> desim::Task<void> {
                for (;;)
                    (void)co_await n->rxQueue(node2).receive();
            }(&net, node),
            "sink");
    }
    sim.run();
    return {net.latencyStats().mean(), net.contentionStats().mean(),
            net.averageChannelUtilization(sim.now())};
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"ablation_wormhole"};
    std::cout << "A1: wormhole channel holding — full-pipeline vs "
                 "early release (uniform random traffic, 32B)\n\n";
    std::cout << std::right << std::setw(12) << "rate(msg/us)"
              << std::setw(12) << "full-lat" << std::setw(12)
              << "early-lat" << std::setw(12) << "full-cont"
              << std::setw(12) << "early-cont" << std::setw(11)
              << "full-util" << std::setw(11) << "early-util"
              << "\n";
    std::cout << std::string(82, '-') << "\n";
    for (double rate : {2.0, 5.0, 10.0, 20.0}) {
        auto full =
            runLoad(cchar::mesh::ChannelHolding::FullPipeline, rate);
        auto early =
            runLoad(cchar::mesh::ChannelHolding::EarlyRelease, rate);
        std::cout << std::fixed << std::setprecision(2) << std::setw(12)
                  << rate << std::setprecision(4) << std::setw(12)
                  << full.latencyMean << std::setw(12)
                  << early.latencyMean << std::setw(12)
                  << full.contentionMean << std::setw(12)
                  << early.contentionMean << std::setprecision(3)
                  << std::setw(11) << full.utilization << std::setw(11)
                  << early.utilization << "\n";
    }
    std::cout << "\nExpected shape: early release lowers contention, "
                 "increasingly so at higher load.\n";
    return 0;
}
