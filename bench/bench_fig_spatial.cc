/**
 * @file
 * Experiment F-SP — "fraction of messages sent by a processor to
 * others in the system": per-source destination distributions for
 * processors p0 and p1 of every application, the paper's spatial
 * distribution figures.
 */

#include <iomanip>
#include <iostream>

#include "common.hh"

namespace {

void
printSource(const cchar::core::CharacterizationReport &report, int src)
{
    for (const auto &sf : report.spatialPerSource) {
        if (sf.source != src)
            continue;
        std::cout << "# " << report.application << " p" << src << " — "
                  << sf.classification.describe() << "\n";
        std::cout << "# dest  fraction  model\n";
        for (std::size_t d = 0; d < sf.observed.size(); ++d) {
            std::cout << "  " << std::setw(4) << d << std::setw(10)
                      << std::fixed << std::setprecision(4)
                      << sf.observed[d] << std::setw(10)
                      << sf.classification.model[d] << "\n";
        }
        std::cout << "\n";
        return;
    }
    std::cout << "# " << report.application << " p" << src
              << " — no traffic\n\n";
}

} // namespace

int
main()
{
    cchar::bench::SelfReport selfReport{"fig_spatial"};
    using namespace cchar::bench;

    std::cout << "F-SP: spatial distribution — fraction of messages "
                 "sent by p0/p1 to each destination\n\n";
    for (const auto &name : sharedMemoryAppNames()) {
        auto report = sharedMemoryReport(name);
        printSource(report, 0);
        printSource(report, 1);
    }
    for (const auto &name : messagePassingAppNames()) {
        auto report = messagePassingReport(name);
        printSource(report, 0);
        printSource(report, 1);
    }
    return 0;
}
