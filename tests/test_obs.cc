/**
 * @file
 * Tests of the observability layer: metrics registry semantics, tracer
 * ring behaviour and Chrome JSON export, windowed sampler, simulator
 * self-instrumentation, and the two system-level guarantees — byte
 * determinism of exports across identical runs, and zero perturbation
 * of simulation results when sinks are installed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "apps/fft1d.hh"
#include "apps/fft3d.hh"
#include "core/core.hh"
#include "obs/obs.hh"

namespace {

using namespace cchar;

/** False when the tree was compiled with -DCCHAR_OBS_DISABLED. */
bool
obsEnabled()
{
    obs::MetricsRegistry probe;
    obs::ScopedObservability scoped{&probe};
    return obs::metrics() != nullptr;
}

// --------------------------------------------------------------------
// Mini JSON syntax checker (no values kept — just well-formedness).

struct JsonChecker
{
    const std::string &s;
    std::size_t i = 0;

    explicit JsonChecker(const std::string &text) : s(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return i == s.size();
    }

    void
    skipWs()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                                s[i] == '\n' || s[i] == '\r'))
            ++i;
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (s.compare(i, n, lit) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
            }
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-'))
            ++i;
        return i > start;
    }

    bool
    value()
    {
        skipWs();
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++i; // '{'
        skipWs();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            if (!value())
                return false;
            skipWs();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        return true;
    }

    bool
    array()
    {
        ++i; // '['
        skipWs();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != ']')
            return false;
        ++i;
        return true;
    }
};

bool
wellFormedJson(const std::string &text)
{
    return JsonChecker{text}.parse();
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(MiniJson, AcceptsAndRejects)
{
    EXPECT_TRUE(wellFormedJson("{}"));
    EXPECT_TRUE(wellFormedJson(R"({"a":[1,2.5,-3e4],"b":null})"));
    EXPECT_TRUE(wellFormedJson(R"(["x",{"y":true},false])"));
    EXPECT_FALSE(wellFormedJson("{"));
    EXPECT_FALSE(wellFormedJson(R"({"a":})"));
    EXPECT_FALSE(wellFormedJson(R"({"a":1} trailing)"));
    EXPECT_FALSE(wellFormedJson(R"({"a" 1})"));
}

// --------------------------------------------------------------------
// Metrics registry

TEST(Registry, CounterInterningAndValues)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Counter a = reg.counter("x.count");
    obs::Counter b = reg.counter("x.count"); // same slot
    a.add();
    b.add(4);
    EXPECT_EQ(a.value(), 5u);
    EXPECT_EQ(reg.counterValue("x.count"), 5u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_TRUE(static_cast<bool>(a));
}

TEST(Registry, DetachedHandlesAreNoOps)
{
    obs::Counter c;
    obs::Gauge g;
    obs::Histogram h;
    c.add(7);
    g.set(1.0);
    g.high(2.0);
    h.record(3.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_FALSE(static_cast<bool>(c));
}

TEST(Registry, GaugeSetAndHighWaterMark)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Gauge g = reg.gauge("depth");
    g.set(3.0);
    g.high(2.0); // below: ignored
    EXPECT_EQ(reg.gaugeValue("depth"), 3.0);
    g.high(9.0);
    EXPECT_EQ(reg.gaugeValue("depth"), 9.0);
}

TEST(Registry, HistogramMoments)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Histogram h = reg.histogram("lat");
    h.record(1.0);
    h.record(2.0);
    h.record(4.0);
    const obs::HistogramData *d = reg.histogramData("lat");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->count, 3u);
    EXPECT_DOUBLE_EQ(d->sum, 7.0);
    EXPECT_DOUBLE_EQ(d->min, 1.0);
    EXPECT_DOUBLE_EQ(d->max, 4.0);
    EXPECT_DOUBLE_EQ(d->mean(), 7.0 / 3.0);
    EXPECT_EQ(reg.histogramData("missing"), nullptr);
}

TEST(Registry, HistogramBucketEdges)
{
    using H = obs::HistogramData;
    // Non-positive and sub-2^-16 values land in the underflow bucket.
    EXPECT_EQ(H::bucketOf(0.0), 0);
    EXPECT_EQ(H::bucketOf(-5.0), 0);
    EXPECT_EQ(H::bucketOf(std::ldexp(1.0, -20)), 0);
    // Overflow bucket.
    EXPECT_EQ(H::bucketOf(std::ldexp(1.0, 40)), H::kBuckets - 1);
    EXPECT_TRUE(std::isinf(H::upperBound(H::kBuckets - 1)));
    // Every in-range value lands in a bucket whose bounds contain it.
    for (double v : {1e-4, 0.5, 1.0, 3.0, 1024.0, 1e6}) {
        int b = H::bucketOf(v);
        ASSERT_GT(b, 0) << v;
        ASSERT_LT(b, H::kBuckets - 1) << v;
        EXPECT_LT(v, H::upperBound(b)) << v;
        EXPECT_GE(v, H::upperBound(b - 1)) << v;
    }
}

TEST(Registry, ResetZeroesButKeepsHandles)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Counter c = reg.counter("c");
    obs::Histogram h = reg.histogram("h");
    c.add(10);
    h.record(1.0);
    reg.reset();
    EXPECT_EQ(reg.counterValue("c"), 0u);
    EXPECT_EQ(reg.histogramData("h")->count, 0u);
    c.add(2); // handle still attached to the same slot
    EXPECT_EQ(reg.counterValue("c"), 2u);
}

TEST(Registry, CapacityExhaustionThrows)
{
    obs::MetricsRegistry reg{2, 1, 1};
    (void)reg.counter("a");
    (void)reg.counter("b");
    (void)reg.counter("a"); // interned: no new slot
    EXPECT_THROW((void)reg.counter("c"), std::length_error);
    (void)reg.gauge("g");
    EXPECT_THROW((void)reg.gauge("g2"), std::length_error);
    (void)reg.histogram("h");
    EXPECT_THROW((void)reg.histogram("h2"), std::length_error);
}

TEST(Registry, JsonSnapshotIsWellFormed)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    reg.counter("msgs").add(3);
    reg.gauge("peak").set(2.5);
    obs::Histogram h = reg.histogram("lat\"q"); // name needing escape
    h.record(0.25);
    h.record(100.0);
    std::ostringstream os;
    reg.writeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(wellFormedJson(json)) << json;
    EXPECT_NE(json.find("\"msgs\":3"), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

// --------------------------------------------------------------------
// Tracer

TEST(Tracer, RecordsSpansAndInstantsPerLane)
{
    obs::Tracer tr{16};
    int r0 = tr.lane("router:0");
    int r1 = tr.lane("router:1");
    EXPECT_EQ(tr.lane("router:0"), r0); // interned
    int msg = tr.name("msg");
    tr.span(r0, msg, 1.0, 2.0);
    tr.span(r1, msg, 1.5, 0.5, 3, 64);
    tr.instant(r0, tr.name("stall"), 2.0);
    EXPECT_EQ(tr.size(), 3u);
    EXPECT_EQ(tr.dropped(), 0u);
    EXPECT_EQ(tr.laneRecordCount(r0), 2u);
    EXPECT_EQ(tr.laneRecordCount(r1), 1u);
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.lane("router:0"), r0); // interning survives clear
}

TEST(Tracer, RingOverflowDropsOldest)
{
    obs::Tracer tr{8};
    int l = tr.lane("x");
    int n = tr.name("e");
    for (int i = 0; i < 20; ++i)
        tr.span(l, n, static_cast<double>(i), 1.0);
    EXPECT_EQ(tr.size(), 8u);
    EXPECT_EQ(tr.dropped(), 12u);
    // Export keeps only the newest 8, oldest-first.
    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(wellFormedJson(json)) << json;
    EXPECT_EQ(json.find("\"ts\":11"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":12"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":12"), std::string::npos);
}

TEST(Tracer, ChromeJsonShape)
{
    obs::Tracer tr;
    int l = tr.lane("proc:a");
    tr.span(l, tr.name("work"), 0.0, 5.0, 7, 9);
    tr.instant(l, tr.name("mark"), 2.5);
    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(wellFormedJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"proc:a\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"d0\":7"), std::string::npos);
}

// --------------------------------------------------------------------
// Windowed sampler

TEST(Sampler, SeriesAndColumns)
{
    obs::WindowedSampler s;
    double level = 1.0;
    s.addSeries("level", [&level] { return level; });
    s.addSeries("twice", [&level] { return 2.0 * level; });
    s.sample(10.0);
    level = 3.0;
    s.sample(20.0);
    EXPECT_EQ(s.seriesCount(), 2u);
    EXPECT_EQ(s.sampleCount(), 2u);
    EXPECT_EQ(s.times(), (std::vector<double>{10.0, 20.0}));
    EXPECT_EQ(s.seriesValues(0), (std::vector<double>{1.0, 3.0}));
    EXPECT_EQ(s.seriesValues(1), (std::vector<double>{2.0, 6.0}));
    // Adding a series after sampling started would desynchronize.
    EXPECT_THROW(s.addSeries("late", [] { return 0.0; }),
                 std::logic_error);
    std::ostringstream os;
    s.writeJson(os);
    EXPECT_TRUE(wellFormedJson(os.str())) << os.str();
    EXPECT_NE(os.str().find("\"level\":[1,3]"), std::string::npos);
}

// --------------------------------------------------------------------
// Process-wide hooks

TEST(Hooks, ScopedInstallAndRestore)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    EXPECT_EQ(obs::metrics(), nullptr);
    obs::MetricsRegistry reg;
    obs::Tracer tr;
    {
        obs::ScopedObservability scoped{&reg, &tr};
        EXPECT_EQ(obs::metrics(), &reg);
        EXPECT_EQ(obs::tracer(), &tr);
        {
            obs::ScopedObservability inner{nullptr};
            EXPECT_EQ(obs::metrics(), nullptr);
            EXPECT_EQ(obs::tracer(), nullptr);
        }
        EXPECT_EQ(obs::metrics(), &reg);
    }
    EXPECT_EQ(obs::metrics(), nullptr);
    EXPECT_EQ(obs::tracer(), nullptr);
}

// --------------------------------------------------------------------
// Simulator self-instrumentation

desim::Task<void>
idleFor(desim::Simulator &sim, double total, double step)
{
    for (double t = 0.0; t < total; t += step)
        co_await sim.delay(step);
}

TEST(SimulatorObs, CountsEventsAndCalendarPeak)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::ScopedObservability scoped{&reg};
    desim::Simulator sim;
    sim.spawn(idleFor(sim, 100.0, 1.0), "idler");
    sim.run();
    EXPECT_EQ(reg.counterValue("desim.events"), sim.processedEvents());
    EXPECT_GE(reg.counterValue("desim.events"), 100u);
    EXPECT_GE(reg.gaugeValue("desim.calendar_peak"), 1.0);
    EXPECT_GE(sim.wallSeconds(), 0.0);
}

TEST(SimulatorObs, ProcessLifetimeSpans)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::Tracer tr;
    obs::ScopedObservability scoped{nullptr, &tr};
    desim::Simulator sim;
    sim.spawn(idleFor(sim, 10.0, 1.0), "worker");
    sim.run();
    EXPECT_EQ(tr.laneRecordCount(tr.lane("proc:worker")), 1u);
}

TEST(SimulatorObs, PeriodicTicksSampleAndTerminate)
{
    obs::WindowedSampler sampler;
    desim::Simulator sim;
    sampler.addSeries("depth", [&sim] {
        return static_cast<double>(sim.calendarSize());
    });
    sim.attachPeriodic(
        [&sampler](desim::SimTime t) { sampler.sample(t); }, 10.0);
    sim.spawn(idleFor(sim, 100.0, 1.0), "idler");
    sim.run(); // must drain: periodic ticks alone don't keep it alive
    EXPECT_GE(sampler.sampleCount(), 9u);
    EXPECT_LE(sampler.sampleCount(), 11u);
    EXPECT_DOUBLE_EQ(sampler.times().front(), 10.0);
    EXPECT_TRUE(sim.allProcessesDone());
}

TEST(SimulatorObs, TwoPeriodicChainsDoNotKeepEachOtherAlive)
{
    desim::Simulator sim;
    int ticksA = 0, ticksB = 0;
    sim.attachPeriodic([&ticksA](desim::SimTime) { ++ticksA; }, 7.0);
    sim.attachPeriodic([&ticksB](desim::SimTime) { ++ticksB; }, 13.0);
    sim.spawn(idleFor(sim, 50.0, 5.0), "idler");
    sim.run();
    EXPECT_LE(sim.now(), 50.0 + 13.0);
    EXPECT_GE(ticksA, 6);
    EXPECT_GE(ticksB, 3);
}

// --------------------------------------------------------------------
// System-level guarantees on a real workload

ccnuma::MachineConfig
machine4x4()
{
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    return cfg;
}

std::string
reportJsonOfRun()
{
    apps::Fft1D app;
    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

TEST(SystemObs, SinksDoNotPerturbTheSimulation)
{
    std::string bare = reportJsonOfRun();
    obs::MetricsRegistry reg;
    obs::Tracer tr;
    std::string observed;
    {
        obs::ScopedObservability scoped{&reg, &tr};
        observed = reportJsonOfRun();
    }
    // Metrics + tracing on: byte-identical characterization output.
    EXPECT_EQ(bare, observed);
}

TEST(SystemObs, ExportsAreDeterministicAcrossIdenticalRuns)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    auto runOnce = [](std::string &traceJson, std::string &metricsJson) {
        obs::MetricsRegistry reg;
        obs::Tracer tr;
        obs::ScopedObservability scoped{&reg, &tr};
        apps::Fft1D app;
        core::CharacterizationPipeline pipeline;
        (void)pipeline.runDynamic(app, machine4x4());
        // Wall-clock throughput is the one legitimately
        // run-dependent value; pin it so the comparison covers
        // every sim-time quantity.
        reg.gauge("desim.events_per_sec").set(0.0);
        std::ostringstream t, m;
        tr.writeChromeJson(t);
        reg.writeJson(m);
        traceJson = t.str();
        metricsJson = m.str();
    };
    std::string trace1, metrics1, trace2, metrics2;
    runOnce(trace1, metrics1);
    runOnce(trace2, metrics2);
    EXPECT_EQ(trace1, trace2);
    EXPECT_EQ(metrics1, metrics2);
}

TEST(SystemObs, MeshCounterMatchesReportedMessageCount)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Tracer tr;
    obs::ScopedObservability scoped{&reg, &tr};
    apps::Fft1D app;
    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());

    EXPECT_EQ(reg.counterValue("mesh.messages"),
              report.volume.messageCount);
    EXPECT_GT(reg.counterValue("desim.events"), 0u);
    EXPECT_GT(reg.counterValue("ccnuma.msg.request"), 0u);
    EXPECT_GT(reg.counterValue("ccnuma.msg.data"), 0u);
    const obs::HistogramData *lat = reg.histogramData("mesh.latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, report.volume.messageCount);

    // Every router lane carries at least one span, and process
    // lifetime spans exist (acceptance criterion of the trace export).
    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    ASSERT_TRUE(wellFormedJson(json)) << json.substr(0, 200);
    for (int r = 0; r < 16; ++r) {
        int laneId = tr.lane("router:" + std::to_string(r));
        EXPECT_GE(tr.laneRecordCount(laneId), 1u) << "router " << r;
    }
    EXPECT_GE(countOccurrences(json, "\"proc:"), 16u);
}

TEST(SystemObs, StaticStrategySamplerAndReplayLag)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::ScopedObservability scoped{&reg};
    obs::WindowedSampler sampler;
    core::PipelineOptions opts;
    opts.sampler = &sampler;
    opts.samplePeriodUs = 25.0;
    core::CharacterizationPipeline pipeline{opts};

    apps::Fft3D app;
    mp::MpConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 2;
    auto report = pipeline.runStatic(app, cfg);

    EXPECT_TRUE(report.verified);
    EXPECT_EQ(reg.counterValue("replay.messages"),
              report.volume.messageCount);
    EXPECT_GT(reg.counterValue("mp.sends"), 0u);
    EXPECT_EQ(reg.counterValue("mp.sends"),
              reg.counterValue("mp.recvs"));
    const obs::HistogramData *lag = reg.histogramData("replay.lag_us");
    ASSERT_NE(lag, nullptr);
    EXPECT_EQ(lag->count, report.volume.messageCount);

    ASSERT_GT(sampler.sampleCount(), 0u);
    EXPECT_EQ(sampler.seriesCount(), 7u);
    std::ostringstream os;
    core::writeMetricsJson(os, &reg, &sampler);
    EXPECT_TRUE(wellFormedJson(os.str()));
}

TEST(SystemObs, WriteMetricsJsonHandlesAbsentParts)
{
    std::ostringstream os;
    core::writeMetricsJson(os, nullptr, nullptr);
    EXPECT_EQ(os.str(),
              "{\"metrics\":null,\"telemetry\":null,\"flows\":null}\n");
    EXPECT_TRUE(wellFormedJson(
        "{\"metrics\":null,\"telemetry\":null,\"flows\":null}"));
}

// --------------------------------------------------------------------
// Flow tracker: id assignment, lifecycle accounting, sampling stride,
// bounded reservoir, JSON export.

TEST(Flow, TrackerLifecycleAndReservoir)
{
    obs::FlowTracker flows{2, 3};
    EXPECT_EQ(flows.stride(), 3u);
    for (int i = 0; i < 5; ++i) {
        auto id = flows.open(0, i, i + 1, 64, 10.0 * i);
        EXPECT_EQ(id, static_cast<std::uint64_t>(i + 1));
    }
    EXPECT_EQ(flows.opened(), 5u);
    // Stride 3 samples ids 1 and 4; 0 is the "no flow" sentinel.
    EXPECT_FALSE(flows.sampled(0));
    EXPECT_TRUE(flows.sampled(1));
    EXPECT_FALSE(flows.sampled(2));
    EXPECT_FALSE(flows.sampled(3));
    EXPECT_TRUE(flows.sampled(4));

    for (std::uint64_t id = 1; id <= 5; ++id) {
        flows.onInject(id, 10.0 * (id - 1) + 2.0);
        flows.onDeliver(id, 10.0 * (id - 1) + 9.0, 3, 1.5, 0.5);
    }
    EXPECT_EQ(flows.completed(), 5u);
    EXPECT_EQ(flows.droppedRecords(), 3u);
    ASSERT_EQ(flows.records().size(), 2u);

    const obs::FlowRecord &rec = flows.records().front();
    EXPECT_EQ(rec.id, 1u);
    EXPECT_EQ(rec.src, 0);
    EXPECT_EQ(rec.dst, 1);
    EXPECT_EQ(rec.bytes, 64);
    EXPECT_EQ(rec.hops, 3);
    EXPECT_DOUBLE_EQ(rec.softwareTime(), 2.0);
    EXPECT_DOUBLE_EQ(rec.networkLatency(), 7.0);
    EXPECT_DOUBLE_EQ(rec.queueWait, 1.5);
    EXPECT_DOUBLE_EQ(rec.stallWait, 0.5);
    EXPECT_DOUBLE_EQ(rec.transitTime(), 5.0);

    std::ostringstream os;
    flows.writeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(wellFormedJson(json)) << json;
    EXPECT_NE(json.find("\"opened\":5"), std::string::npos);
    EXPECT_NE(json.find("\"completed\":5"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":3"), std::string::npos);
    EXPECT_NE(json.find("\"stride\":3"), std::string::npos);
}

TEST(Flow, MeshOpensFlowsAndHistogramsDecomposeLatency)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::FlowTracker flows;
    obs::ScopedObservability scoped{&reg, nullptr, &flows};
    apps::Fft1D app;
    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());

    // Every network message opened exactly one flow and completed it.
    EXPECT_EQ(flows.opened(), report.volume.messageCount);
    EXPECT_EQ(flows.completed(), flows.opened());

    // Latency decomposition histograms observed every message, and
    // each component is bounded by the total latency.
    const obs::HistogramData *lat = reg.histogramData("mesh.latency_us");
    const obs::HistogramData *queue = reg.histogramData("mesh.queue_us");
    const obs::HistogramData *stall = reg.histogramData("mesh.stall_us");
    const obs::HistogramData *transit =
        reg.histogramData("mesh.transit_us");
    ASSERT_NE(lat, nullptr);
    ASSERT_NE(queue, nullptr);
    ASSERT_NE(stall, nullptr);
    ASSERT_NE(transit, nullptr);
    EXPECT_EQ(queue->count, lat->count);
    EXPECT_EQ(stall->count, lat->count);
    EXPECT_EQ(transit->count, lat->count);
    EXPECT_NEAR(queue->sum + stall->sum + transit->sum, lat->sum,
                1e-6 * std::max(1.0, lat->sum));

    // The per-record lifecycle agrees with its own decomposition.
    for (const obs::FlowRecord &rec : flows.records()) {
        EXPECT_GE(rec.tInject, rec.tGenerate);
        EXPECT_GT(rec.tDeliver, rec.tInject);
        EXPECT_GE(rec.transitTime(), 0.0);
    }
}

TEST(Flow, TracerEmitsChromeFlowEvents)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::Tracer tr;
    int lane = tr.lane("router:0");
    int name = tr.name("msg");
    tr.span(lane, name, 1.0, 4.0, 0, 64);
    tr.flowStart(lane, name, 1.0, 7);
    tr.flowStep(lane, name, 2.0, 7);
    tr.flowEnd(lane, name, 4.5, 7);

    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(wellFormedJson(json)) << json;
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"flow\""), 3u);
    EXPECT_NE(json.find("\"ph\":\"s\",\"id\":7"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"t\",\"id\":7"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":7"),
              std::string::npos);
}

TEST(Flow, SinkStatsSurfaceRingOverwritesAndFlowCounts)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Tracer tr{4};
    int lane = tr.lane("l");
    int name = tr.name("n");
    for (int i = 0; i < 10; ++i)
        tr.instant(lane, name, 1.0 * i);

    obs::FlowTracker flows;
    flows.open(0, 0, 1, 8, 0.0);

    obs::publishSinkStats(reg, &tr, &flows);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("obs.tracer.records"), 4.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("obs.tracer.dropped"), 6.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("obs.flows.opened"), 1.0);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("obs.flows.completed"), 0.0);
}

// --------------------------------------------------------------------
// Phase detection: the change-point detector and the PhaseAnalyzer.

TEST(Phases, StationarySignalStaysOnePhase)
{
    obs::PhaseDetector det{3};
    // 48 windows of steady load with small deterministic jitter — the
    // kind of fluctuation a Poisson arrival process shows per window.
    for (int i = 0; i < 48; ++i) {
        double jitter = 0.03 * static_cast<double>(i % 5 - 2);
        det.observe(i * 10.0, (i + 1) * 10.0,
                    {1.0 + jitter, 64.0, 0.9 + jitter / 10.0});
    }
    auto phases = det.finish();
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].beginSample, 0u);
    EXPECT_EQ(phases[0].endSample, 48u);
    EXPECT_DOUBLE_EQ(phases[0].tBegin, 0.0);
    EXPECT_DOUBLE_EQ(phases[0].tEnd, 480.0);
}

TEST(Phases, StepChangeCutsAtTheStep)
{
    obs::PhaseDetector det{1};
    for (int i = 0; i < 40; ++i) {
        double v = i < 20 ? 1.0 : 4.0;
        det.observe(i * 10.0, (i + 1) * 10.0, {v});
    }
    auto phases = det.finish();
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].beginSample, 0u);
    EXPECT_EQ(phases[0].endSample, 20u);
    EXPECT_EQ(phases[1].beginSample, 20u);
    EXPECT_EQ(phases[1].endSample, 40u);
    EXPECT_DOUBLE_EQ(phases[1].tBegin, 200.0);
}

TEST(Phases, AnalyzerFindsOnePhaseOnStationaryUniformLoad)
{
    // Synthetic stationary load: fixed inter-arrival time, fixed
    // length, destinations cycling uniformly over all nodes.
    trace::TrafficLog log{16};
    for (int i = 0; i < 2048; ++i) {
        trace::MessageRecord rec;
        rec.src = i % 16;
        rec.dst = (i * 7 + 3) % 16;
        rec.bytes = 64;
        rec.injectTime = 0.5 * i;
        rec.deliverTime = rec.injectTime + 2.0;
        rec.hops = 2;
        log.add(rec);
    }
    core::PhaseAnalyzer analyzer;
    auto phases = analyzer.detect(log);
    ASSERT_EQ(phases.size(), 1u);

    auto chars = analyzer.analyze(log);
    ASSERT_EQ(chars.size(), 1u);
    EXPECT_EQ(chars[0].messageCount, log.size());
    EXPECT_DOUBLE_EQ(chars[0].meanBytes, 64.0);
    EXPECT_GT(chars[0].dstEntropy, 0.9); // near-uniform destinations
}

TEST(Phases, AnalyzerSplitsTwoRegimeLoad)
{
    // Phase A: sparse large messages to one hot node. Phase B: dense
    // small messages spread over the mesh. Every signal shifts.
    trace::TrafficLog log{16};
    double t = 0.0;
    for (int i = 0; i < 512; ++i) {
        trace::MessageRecord rec;
        rec.src = i % 16;
        rec.dst = 5;
        rec.bytes = 1024;
        rec.injectTime = t;
        rec.deliverTime = t + 4.0;
        t += 4.0;
        log.add(rec);
    }
    for (int i = 0; i < 2048; ++i) {
        trace::MessageRecord rec;
        rec.src = i % 16;
        rec.dst = (i * 5 + 1) % 16;
        rec.bytes = 32;
        rec.injectTime = t;
        rec.deliverTime = t + 1.0;
        t += 0.25;
        log.add(rec);
    }
    core::PhaseAnalyzer analyzer;
    auto chars = analyzer.analyze(log);
    ASSERT_GE(chars.size(), 2u);
    // Ordered, non-overlapping, covering all messages.
    std::size_t total = 0;
    for (std::size_t p = 0; p < chars.size(); ++p) {
        total += chars[p].messageCount;
        if (p > 0)
            EXPECT_GE(chars[p].tBegin, chars[p - 1].tEnd - 1e-9);
    }
    EXPECT_EQ(total, log.size());
    EXPECT_GT(chars.back().injectionRate, chars.front().injectionRate);
    EXPECT_LT(chars.back().meanBytes, chars.front().meanBytes);
}

TEST(Phases, SystemRunDetectsPhasedApplication)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    core::PipelineOptions opts;
    opts.detectPhases = true;
    core::CharacterizationPipeline pipeline{opts};
    apps::Fft3D app;
    mp::MpConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    auto report = pipeline.runStatic(app, cfg);
    EXPECT_GE(report.phases.size(), 2u)
        << "3-D FFT alternates transpose and exchange phases";
    std::size_t total = 0;
    for (const auto &ph : report.phases)
        total += ph.messageCount;
    EXPECT_EQ(total, report.volume.messageCount);
}

// --------------------------------------------------------------------
// Windowed profiles agree with whole-run statistics.

TEST(Windows, BandwidthProfileConservesBytes)
{
    trace::TrafficLog log{4};
    double totalBytes = 0.0;
    for (int i = 0; i < 300; ++i) {
        trace::MessageRecord rec;
        rec.src = i % 4;
        rec.dst = (i + 1) % 4;
        rec.bytes = 16 + (i % 7) * 32;
        rec.injectTime = 0.7 * i;
        rec.deliverTime = rec.injectTime + 1.0;
        log.add(rec);
        totalBytes += rec.bytes;
    }
    for (int windows : {1, 8, 32}) {
        auto prof = core::BandwidthAnalyzer::profile(log, windows);
        ASSERT_EQ(prof.size(), static_cast<std::size_t>(windows));
        double width = log.lastDeliverTime() / windows;
        double sum = 0.0;
        for (double v : prof)
            sum += v * width;
        EXPECT_NEAR(sum, totalBytes, 1e-6 * totalBytes)
            << windows << " windows";
    }
}

TEST(Windows, WindowFitsPartitionTheGaps)
{
    trace::TrafficLog log{2};
    for (int i = 0; i < 256; ++i) {
        trace::MessageRecord rec;
        rec.src = 0;
        rec.dst = 1;
        rec.bytes = 64;
        rec.injectTime = 1.0 * i;
        rec.deliverTime = rec.injectTime + 0.5;
        log.add(rec);
    }
    core::TemporalAnalyzer analyzer;
    auto whole = analyzer.analyzeAggregate(log);
    auto fits = analyzer.analyzeWindows(log, 8);
    ASSERT_EQ(fits.size(), 8u);
    // Windowed gap counts sum to (at most) the whole-run gap count;
    // boundary-straddling gaps are the only losses.
    std::size_t windowed = 0;
    for (const auto &fit : fits)
        windowed += fit.stats.count;
    EXPECT_LE(windowed, whole.stats.count);
    EXPECT_GE(windowed + 8, whole.stats.count);
    // A constant-rate log fits the same mean in every window.
    for (const auto &fit : fits)
        EXPECT_NEAR(fit.stats.mean, whole.stats.mean, 1e-9);
}

// --------------------------------------------------------------------
// HTML run report: structure, embedded JSON, byte determinism.

TEST(HtmlReport, EmbedsWellFormedJsonAndIsDeterministic)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    auto render = [] {
        obs::MetricsRegistry reg;
        obs::FlowTracker flows;
        obs::ScopedObservability scoped{&reg, nullptr, &flows};
        obs::WindowedSampler sampler;
        core::PipelineOptions opts;
        opts.detectPhases = true;
        opts.sampler = &sampler;
        opts.samplePeriodUs = 25.0;
        core::CharacterizationPipeline pipeline{opts};
        apps::Fft1D app;
        auto report = pipeline.runDynamic(app, machine4x4());
        obs::publishSinkStats(reg, nullptr, &flows);
        std::ostringstream os;
        core::writeHtmlReport(
            os, {&report, &reg, &sampler, &flows});
        return os.str();
    };

    std::string html = render();
    EXPECT_EQ(html, render()) << "HTML report must be byte-deterministic";

    // Self-contained: no external fetches of any kind.
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("<link"), std::string::npos);

    // The wall-clock throughput gauge must not leak into the report.
    EXPECT_EQ(html.find("events_per_sec"), std::string::npos);

    // Extract and validate the embedded machine-readable payload.
    const std::string open =
        "<script type=\"application/json\" id=\"cchar-report-data\">";
    auto begin = html.find(open);
    ASSERT_NE(begin, std::string::npos);
    begin += open.size();
    auto end = html.find("</script>", begin);
    ASSERT_NE(end, std::string::npos);
    std::string payload = html.substr(begin, end - begin);
    EXPECT_TRUE(wellFormedJson(payload)) << payload.substr(0, 200);
    EXPECT_NE(payload.find("\"report\":"), std::string::npos);
    EXPECT_NE(payload.find("\"metrics\":"), std::string::npos);
    EXPECT_NE(payload.find("\"telemetry\":"), std::string::npos);
    EXPECT_NE(payload.find("\"flows\":"), std::string::npos);
}

TEST(HtmlReport, RendersWithReportAloneAndRejectsNull)
{
    core::CharacterizationReport report;
    report.application = "unit";
    std::ostringstream os;
    core::writeHtmlReport(os, {&report, nullptr, nullptr, nullptr});
    EXPECT_NE(os.str().find("</html>"), std::string::npos);

    std::ostringstream os2;
    EXPECT_THROW(core::writeHtmlReport(os2, {}), std::invalid_argument);
}

} // namespace
