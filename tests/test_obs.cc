/**
 * @file
 * Tests of the observability layer: metrics registry semantics, tracer
 * ring behaviour and Chrome JSON export, windowed sampler, simulator
 * self-instrumentation, and the two system-level guarantees — byte
 * determinism of exports across identical runs, and zero perturbation
 * of simulation results when sinks are installed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "apps/fft1d.hh"
#include "apps/fft3d.hh"
#include "core/core.hh"
#include "obs/obs.hh"

namespace {

using namespace cchar;

/** False when the tree was compiled with -DCCHAR_OBS_DISABLED. */
bool
obsEnabled()
{
    obs::MetricsRegistry probe;
    obs::ScopedObservability scoped{&probe};
    return obs::metrics() != nullptr;
}

// --------------------------------------------------------------------
// Mini JSON syntax checker (no values kept — just well-formedness).

struct JsonChecker
{
    const std::string &s;
    std::size_t i = 0;

    explicit JsonChecker(const std::string &text) : s(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return i == s.size();
    }

    void
    skipWs()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                                s[i] == '\n' || s[i] == '\r'))
            ++i;
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (s.compare(i, n, lit) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
            }
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-'))
            ++i;
        return i > start;
    }

    bool
    value()
    {
        skipWs();
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++i; // '{'
        skipWs();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            if (!value())
                return false;
            skipWs();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        return true;
    }

    bool
    array()
    {
        ++i; // '['
        skipWs();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != ']')
            return false;
        ++i;
        return true;
    }
};

bool
wellFormedJson(const std::string &text)
{
    return JsonChecker{text}.parse();
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(MiniJson, AcceptsAndRejects)
{
    EXPECT_TRUE(wellFormedJson("{}"));
    EXPECT_TRUE(wellFormedJson(R"({"a":[1,2.5,-3e4],"b":null})"));
    EXPECT_TRUE(wellFormedJson(R"(["x",{"y":true},false])"));
    EXPECT_FALSE(wellFormedJson("{"));
    EXPECT_FALSE(wellFormedJson(R"({"a":})"));
    EXPECT_FALSE(wellFormedJson(R"({"a":1} trailing)"));
    EXPECT_FALSE(wellFormedJson(R"({"a" 1})"));
}

// --------------------------------------------------------------------
// Metrics registry

TEST(Registry, CounterInterningAndValues)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Counter a = reg.counter("x.count");
    obs::Counter b = reg.counter("x.count"); // same slot
    a.add();
    b.add(4);
    EXPECT_EQ(a.value(), 5u);
    EXPECT_EQ(reg.counterValue("x.count"), 5u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_TRUE(static_cast<bool>(a));
}

TEST(Registry, DetachedHandlesAreNoOps)
{
    obs::Counter c;
    obs::Gauge g;
    obs::Histogram h;
    c.add(7);
    g.set(1.0);
    g.high(2.0);
    h.record(3.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_FALSE(static_cast<bool>(c));
}

TEST(Registry, GaugeSetAndHighWaterMark)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Gauge g = reg.gauge("depth");
    g.set(3.0);
    g.high(2.0); // below: ignored
    EXPECT_EQ(reg.gaugeValue("depth"), 3.0);
    g.high(9.0);
    EXPECT_EQ(reg.gaugeValue("depth"), 9.0);
}

TEST(Registry, HistogramMoments)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Histogram h = reg.histogram("lat");
    h.record(1.0);
    h.record(2.0);
    h.record(4.0);
    const obs::HistogramData *d = reg.histogramData("lat");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->count, 3u);
    EXPECT_DOUBLE_EQ(d->sum, 7.0);
    EXPECT_DOUBLE_EQ(d->min, 1.0);
    EXPECT_DOUBLE_EQ(d->max, 4.0);
    EXPECT_DOUBLE_EQ(d->mean(), 7.0 / 3.0);
    EXPECT_EQ(reg.histogramData("missing"), nullptr);
}

TEST(Registry, HistogramBucketEdges)
{
    using H = obs::HistogramData;
    // Non-positive and sub-2^-16 values land in the underflow bucket.
    EXPECT_EQ(H::bucketOf(0.0), 0);
    EXPECT_EQ(H::bucketOf(-5.0), 0);
    EXPECT_EQ(H::bucketOf(std::ldexp(1.0, -20)), 0);
    // Overflow bucket.
    EXPECT_EQ(H::bucketOf(std::ldexp(1.0, 40)), H::kBuckets - 1);
    EXPECT_TRUE(std::isinf(H::upperBound(H::kBuckets - 1)));
    // Every in-range value lands in a bucket whose bounds contain it.
    for (double v : {1e-4, 0.5, 1.0, 3.0, 1024.0, 1e6}) {
        int b = H::bucketOf(v);
        ASSERT_GT(b, 0) << v;
        ASSERT_LT(b, H::kBuckets - 1) << v;
        EXPECT_LT(v, H::upperBound(b)) << v;
        EXPECT_GE(v, H::upperBound(b - 1)) << v;
    }
}

TEST(Registry, ResetZeroesButKeepsHandles)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Counter c = reg.counter("c");
    obs::Histogram h = reg.histogram("h");
    c.add(10);
    h.record(1.0);
    reg.reset();
    EXPECT_EQ(reg.counterValue("c"), 0u);
    EXPECT_EQ(reg.histogramData("h")->count, 0u);
    c.add(2); // handle still attached to the same slot
    EXPECT_EQ(reg.counterValue("c"), 2u);
}

TEST(Registry, CapacityExhaustionThrows)
{
    obs::MetricsRegistry reg{2, 1, 1};
    (void)reg.counter("a");
    (void)reg.counter("b");
    (void)reg.counter("a"); // interned: no new slot
    EXPECT_THROW((void)reg.counter("c"), std::length_error);
    (void)reg.gauge("g");
    EXPECT_THROW((void)reg.gauge("g2"), std::length_error);
    (void)reg.histogram("h");
    EXPECT_THROW((void)reg.histogram("h2"), std::length_error);
}

TEST(Registry, JsonSnapshotIsWellFormed)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    reg.counter("msgs").add(3);
    reg.gauge("peak").set(2.5);
    obs::Histogram h = reg.histogram("lat\"q"); // name needing escape
    h.record(0.25);
    h.record(100.0);
    std::ostringstream os;
    reg.writeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(wellFormedJson(json)) << json;
    EXPECT_NE(json.find("\"msgs\":3"), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

// --------------------------------------------------------------------
// Tracer

TEST(Tracer, RecordsSpansAndInstantsPerLane)
{
    obs::Tracer tr{16};
    int r0 = tr.lane("router:0");
    int r1 = tr.lane("router:1");
    EXPECT_EQ(tr.lane("router:0"), r0); // interned
    int msg = tr.name("msg");
    tr.span(r0, msg, 1.0, 2.0);
    tr.span(r1, msg, 1.5, 0.5, 3, 64);
    tr.instant(r0, tr.name("stall"), 2.0);
    EXPECT_EQ(tr.size(), 3u);
    EXPECT_EQ(tr.dropped(), 0u);
    EXPECT_EQ(tr.laneRecordCount(r0), 2u);
    EXPECT_EQ(tr.laneRecordCount(r1), 1u);
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.lane("router:0"), r0); // interning survives clear
}

TEST(Tracer, RingOverflowDropsOldest)
{
    obs::Tracer tr{8};
    int l = tr.lane("x");
    int n = tr.name("e");
    for (int i = 0; i < 20; ++i)
        tr.span(l, n, static_cast<double>(i), 1.0);
    EXPECT_EQ(tr.size(), 8u);
    EXPECT_EQ(tr.dropped(), 12u);
    // Export keeps only the newest 8, oldest-first.
    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(wellFormedJson(json)) << json;
    EXPECT_EQ(json.find("\"ts\":11"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":12"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":12"), std::string::npos);
}

TEST(Tracer, ChromeJsonShape)
{
    obs::Tracer tr;
    int l = tr.lane("proc:a");
    tr.span(l, tr.name("work"), 0.0, 5.0, 7, 9);
    tr.instant(l, tr.name("mark"), 2.5);
    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(wellFormedJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"proc:a\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"d0\":7"), std::string::npos);
}

// --------------------------------------------------------------------
// Windowed sampler

TEST(Sampler, SeriesAndColumns)
{
    obs::WindowedSampler s;
    double level = 1.0;
    s.addSeries("level", [&level] { return level; });
    s.addSeries("twice", [&level] { return 2.0 * level; });
    s.sample(10.0);
    level = 3.0;
    s.sample(20.0);
    EXPECT_EQ(s.seriesCount(), 2u);
    EXPECT_EQ(s.sampleCount(), 2u);
    EXPECT_EQ(s.times(), (std::vector<double>{10.0, 20.0}));
    EXPECT_EQ(s.seriesValues(0), (std::vector<double>{1.0, 3.0}));
    EXPECT_EQ(s.seriesValues(1), (std::vector<double>{2.0, 6.0}));
    // Adding a series after sampling started would desynchronize.
    EXPECT_THROW(s.addSeries("late", [] { return 0.0; }),
                 std::logic_error);
    std::ostringstream os;
    s.writeJson(os);
    EXPECT_TRUE(wellFormedJson(os.str())) << os.str();
    EXPECT_NE(os.str().find("\"level\":[1,3]"), std::string::npos);
}

// --------------------------------------------------------------------
// Process-wide hooks

TEST(Hooks, ScopedInstallAndRestore)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    EXPECT_EQ(obs::metrics(), nullptr);
    obs::MetricsRegistry reg;
    obs::Tracer tr;
    {
        obs::ScopedObservability scoped{&reg, &tr};
        EXPECT_EQ(obs::metrics(), &reg);
        EXPECT_EQ(obs::tracer(), &tr);
        {
            obs::ScopedObservability inner{nullptr};
            EXPECT_EQ(obs::metrics(), nullptr);
            EXPECT_EQ(obs::tracer(), nullptr);
        }
        EXPECT_EQ(obs::metrics(), &reg);
    }
    EXPECT_EQ(obs::metrics(), nullptr);
    EXPECT_EQ(obs::tracer(), nullptr);
}

// --------------------------------------------------------------------
// Simulator self-instrumentation

desim::Task<void>
idleFor(desim::Simulator &sim, double total, double step)
{
    for (double t = 0.0; t < total; t += step)
        co_await sim.delay(step);
}

TEST(SimulatorObs, CountsEventsAndCalendarPeak)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::ScopedObservability scoped{&reg};
    desim::Simulator sim;
    sim.spawn(idleFor(sim, 100.0, 1.0), "idler");
    sim.run();
    EXPECT_EQ(reg.counterValue("desim.events"), sim.processedEvents());
    EXPECT_GE(reg.counterValue("desim.events"), 100u);
    EXPECT_GE(reg.gaugeValue("desim.calendar_peak"), 1.0);
    EXPECT_GE(sim.wallSeconds(), 0.0);
}

TEST(SimulatorObs, ProcessLifetimeSpans)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::Tracer tr;
    obs::ScopedObservability scoped{nullptr, &tr};
    desim::Simulator sim;
    sim.spawn(idleFor(sim, 10.0, 1.0), "worker");
    sim.run();
    EXPECT_EQ(tr.laneRecordCount(tr.lane("proc:worker")), 1u);
}

TEST(SimulatorObs, PeriodicTicksSampleAndTerminate)
{
    obs::WindowedSampler sampler;
    desim::Simulator sim;
    sampler.addSeries("depth", [&sim] {
        return static_cast<double>(sim.calendarSize());
    });
    sim.attachPeriodic(
        [&sampler](desim::SimTime t) { sampler.sample(t); }, 10.0);
    sim.spawn(idleFor(sim, 100.0, 1.0), "idler");
    sim.run(); // must drain: periodic ticks alone don't keep it alive
    EXPECT_GE(sampler.sampleCount(), 9u);
    EXPECT_LE(sampler.sampleCount(), 11u);
    EXPECT_DOUBLE_EQ(sampler.times().front(), 10.0);
    EXPECT_TRUE(sim.allProcessesDone());
}

TEST(SimulatorObs, TwoPeriodicChainsDoNotKeepEachOtherAlive)
{
    desim::Simulator sim;
    int ticksA = 0, ticksB = 0;
    sim.attachPeriodic([&ticksA](desim::SimTime) { ++ticksA; }, 7.0);
    sim.attachPeriodic([&ticksB](desim::SimTime) { ++ticksB; }, 13.0);
    sim.spawn(idleFor(sim, 50.0, 5.0), "idler");
    sim.run();
    EXPECT_LE(sim.now(), 50.0 + 13.0);
    EXPECT_GE(ticksA, 6);
    EXPECT_GE(ticksB, 3);
}

// --------------------------------------------------------------------
// System-level guarantees on a real workload

ccnuma::MachineConfig
machine4x4()
{
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    return cfg;
}

std::string
reportJsonOfRun()
{
    apps::Fft1D app;
    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

TEST(SystemObs, SinksDoNotPerturbTheSimulation)
{
    std::string bare = reportJsonOfRun();
    obs::MetricsRegistry reg;
    obs::Tracer tr;
    std::string observed;
    {
        obs::ScopedObservability scoped{&reg, &tr};
        observed = reportJsonOfRun();
    }
    // Metrics + tracing on: byte-identical characterization output.
    EXPECT_EQ(bare, observed);
}

TEST(SystemObs, ExportsAreDeterministicAcrossIdenticalRuns)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    auto runOnce = [](std::string &traceJson, std::string &metricsJson) {
        obs::MetricsRegistry reg;
        obs::Tracer tr;
        obs::ScopedObservability scoped{&reg, &tr};
        apps::Fft1D app;
        core::CharacterizationPipeline pipeline;
        (void)pipeline.runDynamic(app, machine4x4());
        // Wall-clock throughput is the one legitimately
        // run-dependent value; pin it so the comparison covers
        // every sim-time quantity.
        reg.gauge("desim.events_per_sec").set(0.0);
        std::ostringstream t, m;
        tr.writeChromeJson(t);
        reg.writeJson(m);
        traceJson = t.str();
        metricsJson = m.str();
    };
    std::string trace1, metrics1, trace2, metrics2;
    runOnce(trace1, metrics1);
    runOnce(trace2, metrics2);
    EXPECT_EQ(trace1, trace2);
    EXPECT_EQ(metrics1, metrics2);
}

TEST(SystemObs, MeshCounterMatchesReportedMessageCount)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::Tracer tr;
    obs::ScopedObservability scoped{&reg, &tr};
    apps::Fft1D app;
    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());

    EXPECT_EQ(reg.counterValue("mesh.messages"),
              report.volume.messageCount);
    EXPECT_GT(reg.counterValue("desim.events"), 0u);
    EXPECT_GT(reg.counterValue("ccnuma.msg.request"), 0u);
    EXPECT_GT(reg.counterValue("ccnuma.msg.data"), 0u);
    const obs::HistogramData *lat = reg.histogramData("mesh.latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, report.volume.messageCount);

    // Every router lane carries at least one span, and process
    // lifetime spans exist (acceptance criterion of the trace export).
    std::ostringstream os;
    tr.writeChromeJson(os);
    std::string json = os.str();
    ASSERT_TRUE(wellFormedJson(json)) << json.substr(0, 200);
    for (int r = 0; r < 16; ++r) {
        int laneId = tr.lane("router:" + std::to_string(r));
        EXPECT_GE(tr.laneRecordCount(laneId), 1u) << "router " << r;
    }
    EXPECT_GE(countOccurrences(json, "\"proc:"), 16u);
}

TEST(SystemObs, StaticStrategySamplerAndReplayLag)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry reg;
    obs::ScopedObservability scoped{&reg};
    obs::WindowedSampler sampler;
    core::PipelineOptions opts;
    opts.sampler = &sampler;
    opts.samplePeriodUs = 25.0;
    core::CharacterizationPipeline pipeline{opts};

    apps::Fft3D app;
    mp::MpConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 2;
    auto report = pipeline.runStatic(app, cfg);

    EXPECT_TRUE(report.verified);
    EXPECT_EQ(reg.counterValue("replay.messages"),
              report.volume.messageCount);
    EXPECT_GT(reg.counterValue("mp.sends"), 0u);
    EXPECT_EQ(reg.counterValue("mp.sends"),
              reg.counterValue("mp.recvs"));
    const obs::HistogramData *lag = reg.histogramData("replay.lag_us");
    ASSERT_NE(lag, nullptr);
    EXPECT_EQ(lag->count, report.volume.messageCount);

    ASSERT_GT(sampler.sampleCount(), 0u);
    EXPECT_EQ(sampler.seriesCount(), 6u);
    std::ostringstream os;
    core::writeMetricsJson(os, &reg, &sampler);
    EXPECT_TRUE(wellFormedJson(os.str()));
}

TEST(SystemObs, WriteMetricsJsonHandlesAbsentParts)
{
    std::ostringstream os;
    core::writeMetricsJson(os, nullptr, nullptr);
    EXPECT_EQ(os.str(), "{\"metrics\":null,\"telemetry\":null}\n");
    EXPECT_TRUE(wellFormedJson("{\"metrics\":null,\"telemetry\":null}"));
}

} // namespace
