/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "desim/desim.hh"

namespace {

using namespace cchar::desim;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.processedEvents(), 0u);
}

TEST(Simulator, DelayAdvancesClock)
{
    Simulator sim;
    double end = -1.0;
    sim.spawn([](Simulator &s, double &out) -> Task<void> {
        co_await s.delay(5.0);
        co_await s.delay(2.5);
        out = s.now();
    }(sim, end));
    sim.run();
    EXPECT_DOUBLE_EQ(end, 7.5);
    EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(Simulator, ZeroAndNegativeDelaysDoNotRewindClock)
{
    Simulator sim;
    std::vector<double> times;
    sim.spawn([](Simulator &s, std::vector<double> &ts) -> Task<void> {
        co_await s.delay(3.0);
        co_await s.delay(0.0);
        ts.push_back(s.now());
        co_await s.delay(-10.0);
        ts.push_back(s.now());
    }(sim, times));
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 3.0);
    EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, EventsExecuteInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    auto waiter = [](Simulator &s, std::vector<int> &ord, double dt,
                     int id) -> Task<void> {
        co_await s.delay(dt);
        ord.push_back(id);
    };
    sim.spawn(waiter(sim, order, 30.0, 3));
    sim.spawn(waiter(sim, order, 10.0, 1));
    sim.spawn(waiter(sim, order, 20.0, 2));
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SimultaneousEventsKeepSpawnOrder)
{
    Simulator sim;
    std::vector<int> order;
    auto waiter = [](Simulator &s, std::vector<int> &ord,
                     int id) -> Task<void> {
        co_await s.delay(5.0);
        ord.push_back(id);
    };
    for (int i = 0; i < 8; ++i)
        sim.spawn(waiter(sim, order, i));
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Simulator, NestedTasksComposeAndReturnValues)
{
    Simulator sim;
    int result = 0;
    auto inner = [](Simulator &s, int x) -> Task<int> {
        co_await s.delay(1.0);
        co_return x * 2;
    };
    sim.spawn([](Simulator &s, int &out, auto &in) -> Task<void> {
        int a = co_await in(s, 10);
        int b = co_await in(s, a);
        out = b;
    }(sim, result, inner));
    sim.run();
    EXPECT_EQ(result, 40);
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, JoinWaitsForProcessCompletion)
{
    Simulator sim;
    double join_time = -1.0;
    auto worker = [](Simulator &s) -> Task<void> {
        co_await s.delay(42.0);
    };
    ProcessRef ref = sim.spawn(worker(sim), "worker");
    sim.spawn([](Simulator &s, ProcessRef r, double &t) -> Task<void> {
        co_await r;
        t = s.now();
    }(sim, ref, join_time));
    sim.run();
    EXPECT_DOUBLE_EQ(join_time, 42.0);
    EXPECT_TRUE(ref.done());
}

TEST(Simulator, JoinOnFinishedProcessDoesNotBlock)
{
    Simulator sim;
    auto quick = [](Simulator &s) -> Task<void> { co_await s.delay(1.0); };
    ProcessRef ref = sim.spawn(quick(sim));
    double t = -1.0;
    sim.spawn([](Simulator &s, ProcessRef r, double &out) -> Task<void> {
        co_await s.delay(100.0);
        co_await r; // already done
        out = s.now();
    }(sim, ref, t));
    sim.run();
    EXPECT_DOUBLE_EQ(t, 100.0);
}

TEST(Simulator, ProcessExceptionSurfacesFromRun)
{
    Simulator sim;
    sim.spawn([](Simulator &s) -> Task<void> {
        co_await s.delay(1.0);
        throw std::runtime_error("boom");
    }(sim));
    EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, UnfinishedProcessesReportedAsDeadlock)
{
    Simulator sim;
    Mailbox<int> mb{sim};
    sim.spawn([](Mailbox<int> &m) -> Task<void> {
        (void)co_await m.receive(); // nobody ever sends
    }(mb), "starved");
    sim.run();
    auto stuck = sim.unfinishedProcesses();
    ASSERT_EQ(stuck.size(), 1u);
    EXPECT_EQ(stuck[0], "starved");
    EXPECT_FALSE(sim.allProcessesDone());
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator sim;
    std::vector<double> hits;
    sim.spawn([](Simulator &s, std::vector<double> &h) -> Task<void> {
        for (int i = 0; i < 10; ++i) {
            co_await s.delay(10.0);
            h.push_back(s.now());
        }
    }(sim, hits));
    sim.runUntil(35.0);
    EXPECT_EQ(hits.size(), 3u);
    EXPECT_DOUBLE_EQ(sim.now(), 35.0);
    sim.run();
    EXPECT_EQ(hits.size(), 10u);
}

TEST(Simulator, ScheduledCallbacksRun)
{
    Simulator sim;
    std::vector<double> ts;
    sim.schedule([&] { ts.push_back(sim.now()); }, 7.0);
    sim.schedule([&] { ts.push_back(sim.now()); }, 3.0);
    sim.run();
    EXPECT_EQ(ts, (std::vector<double>{3.0, 7.0}));
}

TEST(Simulator, EventCapAborts)
{
    Simulator sim;
    sim.setMaxEvents(100);
    sim.spawn([](Simulator &s) -> Task<void> {
        for (;;)
            co_await s.delay(1.0);
    }(sim));
    EXPECT_THROW(sim.run(), std::runtime_error);
}

// --------------------------------------------------------------------
// Resource

TEST(Resource, GrantsImmediatelyWhenFree)
{
    Simulator sim;
    Resource res{sim, 2};
    std::vector<double> grants;
    auto user = [](Simulator &s, Resource &r,
                   std::vector<double> &g) -> Task<void> {
        co_await r.acquire();
        g.push_back(s.now());
        co_await s.delay(10.0);
        r.release();
    };
    sim.spawn(user(sim, res, grants));
    sim.spawn(user(sim, res, grants));
    sim.run();
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_DOUBLE_EQ(grants[0], 0.0);
    EXPECT_DOUBLE_EQ(grants[1], 0.0);
}

TEST(Resource, QueuesFifoWhenSaturated)
{
    Simulator sim;
    Resource res{sim, 1};
    std::vector<std::pair<int, double>> grants;
    auto user = [](Simulator &s, Resource &r, int id, double start,
                   std::vector<std::pair<int, double>> &g) -> Task<void> {
        co_await s.delay(start);
        co_await r.acquire();
        g.push_back({id, s.now()});
        co_await s.delay(10.0);
        r.release();
    };
    sim.spawn(user(sim, res, 0, 0.0, grants));
    sim.spawn(user(sim, res, 1, 1.0, grants));
    sim.spawn(user(sim, res, 2, 2.0, grants));
    sim.run();
    ASSERT_EQ(grants.size(), 3u);
    EXPECT_EQ(grants[0], (std::pair<int, double>{0, 0.0}));
    EXPECT_EQ(grants[1], (std::pair<int, double>{1, 10.0}));
    EXPECT_EQ(grants[2], (std::pair<int, double>{2, 20.0}));
    EXPECT_EQ(res.acquisitions(), 3u);
}

TEST(Resource, WaitTimeStatisticsRecorded)
{
    Simulator sim;
    Resource res{sim, 1};
    auto user = [](Simulator &s, Resource &r, double start) -> Task<void> {
        co_await s.delay(start);
        co_await r.acquire();
        co_await s.delay(10.0);
        r.release();
    };
    sim.spawn(user(sim, res, 0.0)); // waits 0
    sim.spawn(user(sim, res, 0.0)); // waits 10
    sim.run();
    EXPECT_EQ(res.waitTime().count(), 2u);
    EXPECT_DOUBLE_EQ(res.waitTime().max(), 10.0);
    EXPECT_DOUBLE_EQ(res.waitTime().mean(), 5.0);
}

TEST(Resource, UtilizationIntegratesBusyTime)
{
    Simulator sim;
    Resource res{sim, 1};
    sim.spawn([](Simulator &s, Resource &r) -> Task<void> {
        co_await r.acquire();
        co_await s.delay(25.0);
        r.release();
        co_await s.delay(75.0);
    }(sim, res));
    sim.run();
    EXPECT_NEAR(res.utilization(100.0), 0.25, 1e-12);
}

TEST(Resource, TryAcquireRespectsCapacity)
{
    Simulator sim;
    Resource res{sim, 1};
    EXPECT_TRUE(res.tryAcquire());
    EXPECT_FALSE(res.tryAcquire());
    res.release();
    EXPECT_TRUE(res.tryAcquire());
}

TEST(Resource, HoldReleasesOnScopeExit)
{
    Simulator sim;
    Resource res{sim, 1};
    sim.spawn([](Simulator &s, Resource &r) -> Task<void> {
        {
            co_await r.acquire();
            ResourceHold hold{r};
            co_await s.delay(5.0);
        }
        co_await r.acquire(); // must not deadlock
        r.release();
    }(sim, res));
    sim.run();
    EXPECT_TRUE(sim.allProcessesDone());
}

// --------------------------------------------------------------------
// Mailbox

TEST(Mailbox, BuffersWhenNoReceiver)
{
    Simulator sim;
    Mailbox<int> mb{sim};
    mb.send(1);
    mb.send(2);
    EXPECT_EQ(mb.pending(), 2u);
    std::vector<int> got;
    sim.spawn([](Mailbox<int> &m, std::vector<int> &g) -> Task<void> {
        g.push_back(co_await m.receive());
        g.push_back(co_await m.receive());
    }(mb, got));
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Mailbox, DirectHandoffToBlockedReceiver)
{
    Simulator sim;
    Mailbox<std::string> mb{sim};
    std::string got;
    sim.spawn([](Mailbox<std::string> &m, std::string &g) -> Task<void> {
        g = co_await m.receive();
    }(mb, got));
    sim.spawn([](Simulator &s, Mailbox<std::string> &m) -> Task<void> {
        co_await s.delay(5.0);
        m.send("hello");
    }(sim, mb));
    sim.run();
    EXPECT_EQ(got, "hello");
}

TEST(Mailbox, MultipleReceiversServedFifo)
{
    Simulator sim;
    Mailbox<int> mb{sim};
    std::vector<std::pair<int, int>> got; // (receiver, value)
    auto rx = [](Mailbox<int> &m, int id,
                 std::vector<std::pair<int, int>> &g) -> Task<void> {
        int v = co_await m.receive();
        g.push_back({id, v});
    };
    sim.spawn(rx(mb, 0, got));
    sim.spawn(rx(mb, 1, got));
    sim.spawn([](Simulator &s, Mailbox<int> &m) -> Task<void> {
        co_await s.delay(1.0);
        m.send(100);
        m.send(200);
    }(sim, mb));
    sim.run();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
    EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
}

TEST(Mailbox, TryReceive)
{
    Simulator sim;
    Mailbox<int> mb{sim};
    EXPECT_FALSE(mb.tryReceive().has_value());
    mb.send(7);
    auto v = mb.tryReceive();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
}

// --------------------------------------------------------------------
// SimEvent

TEST(SimEvent, TriggerWakesAllWaiters)
{
    Simulator sim;
    SimEvent ev{sim};
    int woken = 0;
    auto waiter = [](SimEvent &e, int &w) -> Task<void> {
        co_await e.wait();
        ++w;
    };
    for (int i = 0; i < 3; ++i)
        sim.spawn(waiter(ev, woken));
    sim.spawn([](Simulator &s, SimEvent &e) -> Task<void> {
        co_await s.delay(10.0);
        e.trigger();
    }(sim, ev));
    sim.run();
    EXPECT_EQ(woken, 3);
}

TEST(SimEvent, LatchedEventDoesNotBlockLateWaiters)
{
    Simulator sim;
    SimEvent ev{sim};
    ev.trigger();
    double t = -1.0;
    sim.spawn([](Simulator &s, SimEvent &e, double &out) -> Task<void> {
        co_await s.delay(3.0);
        co_await e.wait();
        out = s.now();
    }(sim, ev, t));
    sim.run();
    EXPECT_DOUBLE_EQ(t, 3.0);
}

TEST(SimEvent, PulseWakesOnlyCurrentWaiters)
{
    Simulator sim;
    SimEvent ev{sim};
    int woken = 0;
    sim.spawn([](SimEvent &e, int &w) -> Task<void> {
        co_await e.wait();
        ++w;
    }(ev, woken), "early");
    sim.spawn([](Simulator &s, SimEvent &e) -> Task<void> {
        co_await s.delay(1.0);
        e.pulse();
    }(sim, ev));
    sim.spawn([](Simulator &s, SimEvent &e, int &w) -> Task<void> {
        co_await s.delay(2.0);
        co_await e.wait(); // pulse already passed; stays blocked
        ++w;
    }(sim, ev, woken), "late");
    sim.run();
    EXPECT_EQ(woken, 1);
    EXPECT_EQ(sim.unfinishedProcesses(),
              (std::vector<std::string>{"late"}));
}

// --------------------------------------------------------------------
// Statistics

TEST(Tally, MomentsAndExtremes)
{
    Tally t;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        t.record(x);
    EXPECT_EQ(t.count(), 8u);
    EXPECT_DOUBLE_EQ(t.mean(), 5.0);
    EXPECT_DOUBLE_EQ(t.variance(), 4.0);
    EXPECT_DOUBLE_EQ(t.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(t.cv(), 0.4);
    EXPECT_DOUBLE_EQ(t.min(), 2.0);
    EXPECT_DOUBLE_EQ(t.max(), 9.0);
}

TEST(Tally, EmptyIsSafe)
{
    Tally t;
    EXPECT_EQ(t.count(), 0u);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
    EXPECT_DOUBLE_EQ(t.variance(), 0.0);
    EXPECT_DOUBLE_EQ(t.min(), 0.0);
    EXPECT_DOUBLE_EQ(t.max(), 0.0);
}

TEST(TimeWeighted, AveragesPiecewiseConstantSignal)
{
    TimeWeighted tw{0.0};
    tw.update(4.0, 10.0); // 0 on [0,10)
    tw.update(0.0, 20.0); // 4 on [10,20)
    EXPECT_NEAR(tw.average(40.0), 1.0, 1e-12);
}

// --------------------------------------------------------------------
// Determinism

TEST(Simulator, RepeatedRunsAreBitIdentical)
{
    auto experiment = [] {
        Simulator sim;
        Resource res{sim, 2};
        Mailbox<int> mb{sim};
        std::vector<double> log;
        auto producer = [](Simulator &s, Resource &r, Mailbox<int> &m,
                           int id, std::vector<double> &lg) -> Task<void> {
            for (int i = 0; i < 20; ++i) {
                co_await r.acquire();
                co_await s.delay(1.0 + 0.1 * id);
                r.release();
                m.send(id * 100 + i);
                lg.push_back(s.now());
            }
        };
        auto consumer = [](Mailbox<int> &m,
                           std::vector<double> &lg) -> Task<void> {
            for (int i = 0; i < 60; ++i) {
                int v = co_await m.receive();
                lg.push_back(static_cast<double>(v));
            }
        };
        for (int id = 0; id < 3; ++id)
            sim.spawn(producer(sim, res, mb, id, log));
        sim.spawn(consumer(mb, log));
        sim.run();
        return log;
    };
    EXPECT_EQ(experiment(), experiment());
}

} // namespace

// --------------------------------------------------------------------
// Robustness extensions

namespace {

TEST(Simulator, ExceptionInNestedTaskPropagatesToRoot)
{
    Simulator sim;
    auto inner = [](Simulator &s) -> Task<int> {
        co_await s.delay(1.0);
        throw std::runtime_error("inner-boom");
        co_return 0; // unreachable
    };
    sim.spawn([](Simulator &s, auto &in) -> Task<void> {
        (void)co_await in(s);
    }(sim, inner));
    EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, ExceptionCaughtInsideProcessDoesNotSurface)
{
    Simulator sim;
    bool caught = false;
    auto inner = [](Simulator &s) -> Task<void> {
        co_await s.delay(1.0);
        throw std::runtime_error("handled");
    };
    sim.spawn([](Simulator &s, auto &in, bool &flag) -> Task<void> {
        try {
            co_await in(s);
        } catch (const std::runtime_error &) {
            flag = true;
        }
        co_await s.delay(1.0);
    }(sim, inner, caught));
    sim.run();
    EXPECT_TRUE(caught);
    EXPECT_TRUE(sim.allProcessesDone());
}

TEST(Simulator, TaskWithMoveOnlyResult)
{
    Simulator sim;
    std::string got;
    auto maker = [](Simulator &s) -> Task<std::unique_ptr<std::string>> {
        co_await s.delay(1.0);
        co_return std::make_unique<std::string>("move-only");
    };
    sim.spawn([](Simulator &s, auto &mk, std::string &out) -> Task<void> {
        auto p = co_await mk(s);
        out = *p;
    }(sim, maker, got));
    sim.run();
    EXPECT_EQ(got, "move-only");
}

TEST(Simulator, ManyProcessesHeavyInterleaving)
{
    Simulator sim;
    Resource res{sim, 3};
    int completions = 0;
    for (int i = 0; i < 200; ++i) {
        sim.spawn([](Simulator &s, Resource &r, int id,
                     int &done) -> Task<void> {
            for (int k = 0; k < 5; ++k) {
                co_await r.acquire();
                co_await s.delay(0.1 + 0.001 * id);
                r.release();
            }
            ++done;
        }(sim, res, i, completions));
    }
    sim.run();
    EXPECT_EQ(completions, 200);
    EXPECT_EQ(res.acquisitions(), 1000u);
    EXPECT_TRUE(sim.allProcessesDone());
}

TEST(Simulator, RunUntilThenRunFinishes)
{
    Simulator sim;
    int steps = 0;
    sim.spawn([](Simulator &s, int &n) -> Task<void> {
        for (int i = 0; i < 10; ++i) {
            co_await s.delay(1.0);
            ++n;
        }
    }(sim, steps));
    sim.runUntil(4.5);
    EXPECT_EQ(steps, 4);
    sim.runUntil(4.6); // no event in window
    EXPECT_EQ(steps, 4);
    sim.run();
    EXPECT_EQ(steps, 10);
}

TEST(Simulator, TeardownWithSuspendedProcessesIsClean)
{
    // Destroying the simulator with blocked processes must not leak
    // or crash (ASAN/valgrind-class check by construction).
    auto build = [] {
        auto sim = std::make_unique<Simulator>();
        auto mb = std::make_unique<Mailbox<int>>(*sim);
        sim->spawn([](Mailbox<int> &m) -> Task<void> {
            (void)co_await m.receive();
        }(*mb));
        sim->run();
        return std::pair{std::move(sim), std::move(mb)};
    };
    auto [sim, mb] = build();
    EXPECT_FALSE(sim->allProcessesDone());
    // sim destroyed first; frames owned by it are torn down.
}

} // namespace
