/**
 * @file
 * Tests for the crash-safe sweep orchestration layer: the job
 * journal (canonical hashing, parse/format fixpoint, torn-tail
 * tolerance), resume byte-identity against an uninterrupted run,
 * per-job deadlines with retry/quarantine, and graceful shutdown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "apps/diag.hh"
#include "apps/registry.hh"
#include "core/status.hh"
#include "obs/registry.hh"
#include "sweep/engine.hh"
#include "sweep/journal.hh"
#include "sweep/policy.hh"
#include "sweep/spec.hh"

namespace {

using namespace cchar;
using sweep::JobOutcome;
using sweep::JournalContents;
using sweep::JournalRecord;
using sweep::JournalWriter;
using sweep::SweepEngine;
using sweep::SweepJob;
using sweep::SweepResult;
using sweep::SweepRunOptions;
using sweep::SweepSpec;

// Sanitizer instrumentation slows the simulator by an order of
// magnitude, so deadlines that must NOT fire on healthy jobs are
// scaled up to keep the deadline tests meaningful under TSan/ASan.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kDeadlineScale = 20.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kDeadlineScale = 20.0;
#else
constexpr double kDeadlineScale = 1.0;
#endif
#else
constexpr double kDeadlineScale = 1.0;
#endif

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "cchar_journal_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f{path, std::ios::binary};
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.apps = {"is", "mg"};
    spec.procs = {4};
    spec.loads = {0.2, 0.5};
    spec.seeds = {1, 2};
    return spec;
}

std::string
jsonOf(const SweepResult &result)
{
    std::ostringstream os;
    result.writeJson(os);
    return os.str();
}

std::string
csvOf(const SweepResult &result)
{
    std::ostringstream os;
    result.writeCsv(os);
    return os.str();
}

// --------------------------------------------------------------------
// Canonical hashing

TEST(JobHash, DistinguishesEveryField)
{
    SweepJob base;
    base.app = "is";
    base.procs = 4;
    base.width = 2;
    base.height = 2;
    base.load = 0.3;
    base.seed = 7;

    std::uint64_t h = sweep::jobHash(base);
    EXPECT_EQ(h, sweep::jobHash(base)) << "hash must be stable";

    SweepJob j = base;
    j.index = 5;
    EXPECT_NE(sweep::jobHash(j), h);
    j = base;
    j.app = "mg";
    EXPECT_NE(sweep::jobHash(j), h);
    j = base;
    j.load = 0.30000000000000004; // one ulp away
    EXPECT_NE(sweep::jobHash(j), h);
    j = base;
    j.seed = 8;
    EXPECT_NE(sweep::jobHash(j), h);
    j = base;
    j.torus = true;
    EXPECT_NE(sweep::jobHash(j), h);
    j = base;
    j.faultPlan = "drop:0.1";
    EXPECT_NE(sweep::jobHash(j), h);
    j = base;
    j.rankActivity = true;
    EXPECT_NE(sweep::jobHash(j), h);
}

TEST(JobHash, StringBoundariesDoNotCollide)
{
    // The 0x1f string terminator must keep ("ab","c") distinct from
    // ("a","bc") across adjacent string fields.
    SweepJob a;
    a.app = "ab";
    a.faultPlan = "c";
    SweepJob b;
    b.app = "a";
    b.faultPlan = "bc";
    EXPECT_NE(sweep::jobHash(a), sweep::jobHash(b));
}

TEST(SpecHash, DependsOnOrderAndCount)
{
    std::vector<SweepJob> jobs = smallSpec().expand();
    std::uint64_t h = sweep::specHash(jobs);
    EXPECT_EQ(h, sweep::specHash(jobs));

    std::vector<SweepJob> swapped = jobs;
    std::swap(swapped.front().app, swapped.back().app); // "is" <-> "mg"
    EXPECT_NE(sweep::specHash(swapped), h);

    std::vector<SweepJob> shorter(jobs.begin(), jobs.end() - 1);
    EXPECT_NE(sweep::specHash(shorter), h);
}

// --------------------------------------------------------------------
// Parse/format fixpoint

JournalRecord
randomRecord(std::mt19937 &rng, std::uint64_t index)
{
    std::uniform_real_distribution<double> uni(-1.0, 1.0);
    std::uniform_int_distribution<std::uint64_t> big(
        0, std::numeric_limits<std::uint64_t>::max());

    JournalRecord rec;
    rec.hash = big(rng);
    JobOutcome &o = rec.outcome;
    o.job.index = static_cast<std::size_t>(index);
    o.status = (index % 3 == 0) ? "ok" : "sim-error";
    o.error = (index % 3 == 0)
                  ? ""
                  : "line1\nline2\ttabbed \"quoted\" b\\slash";
    o.verified = index % 2 == 0;
    o.attempts = static_cast<int>(index % 4 + 1);
    o.quarantined = index % 5 == 0;
    // Values past 2^53 must survive (doubles cannot carry them).
    o.messages = big(rng);
    o.droppedPackets = big(rng);
    o.idleWaves = big(rng);
    o.hotspotCount = big(rng);
    // Awkward doubles: denormal, negative zero, exact binary dyadics,
    // and full-entropy mantissas.
    o.totalBytes = uni(rng) * 1e12;
    o.latencyMean = 5e-324; // smallest denormal
    o.latencyMax = -0.0;
    o.contentionMean = uni(rng);
    o.makespan = 0x1.fffffffffffffp+1023; // DBL_MAX
    o.avgChannelUtilization = uni(rng);
    o.maxChannelUtilization = uni(rng);
    o.skewMaxUs = uni(rng) * 1e-300;
    o.idleFractionMean = uni(rng);
    o.waveSpeedMax = uni(rng);
    o.maxLinkUtil = uni(rng);
    o.linkGini = uni(rng);
    o.congestionOnsetLoad = uni(rng);
    o.temporalFit = "exponential";
    o.spatialPattern = "p=0.5,\"odd\"";

    rec.counters.emplace_back("a.count", big(rng));
    rec.counters.emplace_back("b.count", std::uint64_t{0});
    rec.gauges.emplace_back("g.denormal", 4.9e-324);
    rec.gauges.emplace_back("g.value", uni(rng));
    obs::HistogramData h;
    h.count = 3;
    h.sum = uni(rng);
    h.min = uni(rng) - 2.0;
    h.max = uni(rng) + 2.0;
    h.buckets[0] = 1;
    h.buckets[17] = big(rng);
    h.buckets[obs::HistogramData::kBuckets - 1] = 1;
    rec.histograms.emplace_back("h.lat", h);
    return rec;
}

TEST(JournalFormat, ParseFormatFixpointOnRandomRecords)
{
    std::mt19937 rng{12345};
    for (std::uint64_t i = 0; i < 50; ++i) {
        JournalRecord rec = randomRecord(rng, i);
        std::string doc = sweep::formatJournalHeader(0xabcdefull, 100) +
                          sweep::formatJournalRecord(rec);
        JournalContents parsed = sweep::parseJournal(doc);
        ASSERT_EQ(parsed.records.size(), 1u) << "iteration " << i;
        EXPECT_FALSE(parsed.truncatedTail);

        // format(parse(format(r))) == format(r): serialization is a
        // fixpoint, which is what byte-identical resume rests on.
        std::string again =
            sweep::formatJournalRecord(parsed.records[0]);
        EXPECT_EQ(sweep::formatJournalRecord(rec), again)
            << "iteration " << i;

        const JobOutcome &o = parsed.records[0].outcome;
        EXPECT_EQ(o.messages, rec.outcome.messages);
        EXPECT_EQ(o.error, rec.outcome.error);
        // Bitwise double equality, not approximate.
        EXPECT_EQ(std::signbit(o.latencyMax),
                  std::signbit(rec.outcome.latencyMax));
        EXPECT_EQ(o.latencyMean, rec.outcome.latencyMean);
        EXPECT_EQ(o.makespan, rec.outcome.makespan);
        ASSERT_EQ(parsed.records[0].histograms.size(), 1u);
        EXPECT_EQ(parsed.records[0].histograms[0].second.buckets,
                  rec.histograms[0].second.buckets);
    }
}

TEST(JournalFormat, HeaderRoundTrips)
{
    std::string doc = sweep::formatJournalHeader(0x1234abcd5678ull, 42);
    JournalContents parsed = sweep::parseJournal(doc);
    EXPECT_EQ(parsed.specHash, 0x1234abcd5678ull);
    EXPECT_EQ(parsed.jobs, 42u);
    EXPECT_TRUE(parsed.records.empty());
}

TEST(JournalFormat, TornFinalLineIsToleratedNotFatal)
{
    std::mt19937 rng{99};
    JournalRecord rec = randomRecord(rng, 0);
    std::string line = sweep::formatJournalRecord(rec);
    std::string header = sweep::formatJournalHeader(7, 3);

    // Chop the final record mid-content: a SIGKILL can land mid-write
    // at any byte. (A record missing only its trailing newline is
    // complete JSON and is deliberately accepted, so the cuts here
    // all land strictly inside the record body.)
    for (std::size_t cut : {std::size_t{1}, line.size() / 2,
                            line.size() - 2}) {
        std::string doc = header + line + line.substr(0, cut);
        JournalContents parsed;
        ASSERT_NO_THROW(parsed = sweep::parseJournal(doc))
            << "cut=" << cut;
        EXPECT_TRUE(parsed.truncatedTail) << "cut=" << cut;
        ASSERT_EQ(parsed.records.size(), 1u) << "cut=" << cut;
    }

    // The newline-less-but-complete final record is kept.
    JournalContents whole = sweep::parseJournal(
        header + line + line.substr(0, line.size() - 1));
    EXPECT_FALSE(whole.truncatedTail);
    EXPECT_EQ(whole.records.size(), 2u);
}

TEST(JournalFormat, MalformedMidlineIsFatal)
{
    std::mt19937 rng{100};
    std::string doc = sweep::formatJournalHeader(7, 3) +
                      "{\"type\":\"job\",\"hash\":garbage}\n" +
                      sweep::formatJournalRecord(randomRecord(rng, 1));
    EXPECT_THROW(sweep::parseJournal(doc), core::CCharError);
}

TEST(JournalFormat, BadHeaderIsFatal)
{
    EXPECT_THROW(sweep::parseJournal("{\"type\":\"nope\"}\n"),
                 core::CCharError);
    EXPECT_THROW(sweep::parseJournal(""), core::CCharError);
}

// --------------------------------------------------------------------
// Journal writer + engine resume

TEST(JournalResume, PartialJournalReproducesUninterruptedBytes)
{
    SweepSpec spec = smallSpec();
    std::string journalPath = tempPath("resume.jsonl");

    SweepRunOptions full;
    full.workers = 2;
    full.journalPath = journalPath;
    SweepResult base = SweepEngine{spec}.run(full);
    std::string baseJson = jsonOf(base);
    std::string baseCsv = csvOf(base);
    ASSERT_EQ(base.failures(), 0u);

    std::string journal = slurp(journalPath);
    std::vector<std::string> lines;
    std::istringstream is{journal};
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 1u + base.outcomes.size());

    // Resume from every prefix: header only (nothing resumed) up to
    // the complete journal (everything resumed, nothing rerun).
    for (std::size_t keep = 0; keep <= base.outcomes.size();
         keep += 3) {
        std::string partialPath = tempPath("resume_partial.jsonl");
        {
            std::ofstream f{partialPath, std::ios::binary};
            for (std::size_t i = 0; i <= keep; ++i)
                f << lines[i] << "\n";
        }
        SweepRunOptions opts;
        opts.workers = 2;
        opts.resumePath = partialPath;
        SweepResult resumed = SweepEngine{spec}.run(opts);
        EXPECT_EQ(resumed.resumedJobs, keep) << "keep=" << keep;
        EXPECT_EQ(jsonOf(resumed), baseJson) << "keep=" << keep;
        EXPECT_EQ(csvOf(resumed), baseCsv) << "keep=" << keep;
        std::remove(partialPath.c_str());
    }
    std::remove(journalPath.c_str());
}

TEST(JournalResume, ResumeIntoFreshJournalIsSelfComplete)
{
    SweepSpec spec = smallSpec();
    std::string firstPath = tempPath("first.jsonl");
    std::string secondPath = tempPath("second.jsonl");

    SweepRunOptions full;
    full.workers = 1;
    full.journalPath = firstPath;
    SweepResult base = SweepEngine{spec}.run(full);

    // Chop the journal, then resume into a *different* file.
    std::string journal = slurp(firstPath);
    std::size_t cut = 0;
    for (int n = 0; n < 4; ++n) // header + 3 records
        cut = journal.find('\n', cut) + 1;
    {
        std::ofstream f{firstPath, std::ios::binary};
        f << journal.substr(0, cut);
    }
    SweepRunOptions opts;
    opts.workers = 1;
    opts.resumePath = firstPath;
    opts.journalPath = secondPath;
    SweepResult resumed = SweepEngine{spec}.run(opts);
    EXPECT_EQ(resumed.resumedJobs, 3u);
    EXPECT_EQ(jsonOf(resumed), jsonOf(base));

    // The new journal alone must now resume the whole matrix.
    SweepRunOptions again;
    again.workers = 2;
    again.resumePath = secondPath;
    SweepResult replayed = SweepEngine{spec}.run(again);
    EXPECT_EQ(replayed.resumedJobs, base.outcomes.size());
    EXPECT_EQ(jsonOf(replayed), jsonOf(base));

    std::remove(firstPath.c_str());
    std::remove(secondPath.c_str());
}

TEST(JournalResume, MismatchedSpecIsRejected)
{
    SweepSpec spec = smallSpec();
    std::string path = tempPath("mismatch.jsonl");
    SweepRunOptions full;
    full.journalPath = path;
    (void)SweepEngine{spec}.run(full);

    SweepSpec other = smallSpec();
    other.loads = {0.9};
    SweepRunOptions opts;
    opts.resumePath = path;
    EXPECT_THROW(SweepEngine{other}.run(opts), core::CCharError);
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Policy helpers

TEST(Policy, TransientClassification)
{
    EXPECT_TRUE(sweep::isTransientStatus("deadline-exceeded"));
    EXPECT_TRUE(sweep::isTransientStatus("watchdog-trip"));
    EXPECT_FALSE(sweep::isTransientStatus("sim-error"));
    EXPECT_FALSE(sweep::isTransientStatus("usage-error"));
    EXPECT_FALSE(sweep::isTransientStatus("ok"));
}

TEST(Policy, BackoffDoublesAndClamps)
{
    sweep::JobPolicy p;
    p.backoffMs = 100.0;
    EXPECT_DOUBLE_EQ(sweep::backoffDelayMs(p, 2), 100.0);
    EXPECT_DOUBLE_EQ(sweep::backoffDelayMs(p, 3), 200.0);
    EXPECT_DOUBLE_EQ(sweep::backoffDelayMs(p, 4), 400.0);
    EXPECT_DOUBLE_EQ(sweep::backoffDelayMs(p, 12), 5000.0);
}

// --------------------------------------------------------------------
// Deadlines, retry, quarantine, shutdown (engine level)

SweepSpec
diagSpec(const std::string &diagApp)
{
    SweepSpec spec;
    spec.apps = {diagApp, "is"};
    spec.procs = {4};
    spec.loads = {0.2};
    spec.seeds = {1};
    return spec;
}

TEST(Orchestration, HangingJobIsQuarantinedOthersSurvive)
{
    SweepRunOptions opts;
    opts.workers = 2;
    opts.policy.jobTimeoutSec = 0.25 * kDeadlineScale;
    opts.policy.maxRetries = 1;
    opts.policy.backoffMs = 10.0;
    SweepResult result = SweepEngine{diagSpec("diag-spin")}.run(opts);

    ASSERT_EQ(result.outcomes.size(), 2u);
    const JobOutcome &hung = result.outcomes[0];
    const JobOutcome &good = result.outcomes[1];
    EXPECT_EQ(hung.job.app, "diag-spin");
    EXPECT_EQ(hung.status, "deadline-exceeded");
    EXPECT_TRUE(hung.quarantined);
    EXPECT_EQ(hung.attempts, 2) << "one retry then quarantine";
    EXPECT_EQ(good.status, "ok");
    EXPECT_TRUE(good.verified);
    EXPECT_EQ(result.quarantinedCount(), 1u);
    EXPECT_EQ(result.retries(), 1u);
    EXPECT_FALSE(result.interrupted);

    // Degraded section present, with the quarantined job only.
    std::string json = jsonOf(result);
    EXPECT_NE(json.find("\"degraded\":[{\"index\":0,"
                        "\"app\":\"diag-spin\""),
              std::string::npos);
}

TEST(Orchestration, DeterministicFailureIsNotRetried)
{
    SweepRunOptions opts;
    opts.workers = 4;
    opts.policy.jobTimeoutSec = 30.0;
    opts.policy.maxRetries = 3;
    SweepResult result = SweepEngine{diagSpec("diag-throw")}.run(opts);

    const JobOutcome &thrown = result.outcomes[0];
    EXPECT_EQ(thrown.status, "sim-error");
    EXPECT_EQ(thrown.attempts, 1)
        << "a deterministic failure must not burn the retry budget";
    EXPECT_TRUE(thrown.quarantined);
    EXPECT_EQ(result.outcomes[1].status, "ok");
}

TEST(Orchestration, ThrowingJobDoesNotKillThePool)
{
    // Regression: an exception escaping a job must be recorded in its
    // outcome, not propagate out of the worker thread (which would
    // std::terminate the process). Every worker drains past it and
    // the result stays byte-identical across worker counts.
    SweepSpec spec;
    spec.apps = {"diag-throw", "is", "mg"};
    spec.procs = {4};
    spec.loads = {0.2, 0.4};
    spec.seeds = {1, 2};

    SweepResult serial = SweepEngine{spec}.run(1);
    SweepResult wide = SweepEngine{spec}.run(4);
    EXPECT_EQ(jsonOf(serial), jsonOf(wide));
    EXPECT_EQ(csvOf(serial), csvOf(wide));
    EXPECT_GT(serial.failures(), 0u);
    for (const JobOutcome &o : wide.outcomes) {
        if (o.job.app == "diag-throw")
            EXPECT_EQ(o.status, "sim-error");
        else
            EXPECT_EQ(o.status, "ok");
    }
}

TEST(Orchestration, FlakyJobRecoversWithinRetryBudget)
{
    // Transient wall-clock failure: the first attempt spins until the
    // deadline cancels it, every later attempt completes instantly.
    static std::atomic<int> constructions{0};
    constructions.store(0);

    class FlakyOnce : public apps::MessagePassingApp
    {
      public:
        explicit FlakyOnce(bool hang) : hang_(hang) {}
        std::string name() const override { return "diag-flaky"; }
        void setup(mp::MpWorld &) override {}
        desim::Task<void> runRank(mp::MpContext ctx) override
        {
            if (hang_) {
                for (;;)
                    co_await ctx.compute(100.0);
            }
            co_await ctx.compute(10.0);
        }
        bool verify() const override { return !hang_; }

      private:
        bool hang_;
    };
    apps::registerMessagePassingApp("diag-flaky", [] {
        int n = constructions.fetch_add(1);
        return std::make_unique<FlakyOnce>(n == 0);
    });

    SweepSpec spec;
    spec.apps = {"diag-flaky"};
    spec.procs = {4};
    spec.loads = {0.2};
    spec.seeds = {1};

    SweepRunOptions opts;
    opts.policy.jobTimeoutSec = 0.25 * kDeadlineScale;
    opts.policy.maxRetries = 2;
    opts.policy.backoffMs = 10.0;
    SweepResult result = SweepEngine{spec}.run(opts);

    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_EQ(result.outcomes[0].status, "ok");
    EXPECT_EQ(result.outcomes[0].attempts, 2);
    EXPECT_FALSE(result.outcomes[0].quarantined);
    EXPECT_EQ(result.retries(), 1u);
    EXPECT_EQ(result.quarantinedCount(), 0u);
}

TEST(Orchestration, PresetShutdownInterruptsEverything)
{
    std::atomic<int> shutdown{1};
    SweepRunOptions opts;
    opts.workers = 2;
    opts.shutdown = &shutdown;
    SweepResult result = SweepEngine{smallSpec()}.run(opts);

    EXPECT_TRUE(result.interrupted);
    EXPECT_EQ(result.interruptedCount(), result.outcomes.size());
    for (const JobOutcome &o : result.outcomes) {
        EXPECT_EQ(o.status, "interrupted");
        EXPECT_EQ(o.attempts, 0) << "never started";
        EXPECT_FALSE(o.quarantined)
            << "interruption is not a job failure";
    }
}

TEST(Orchestration, RetryCountersReachTheMergedRegistry)
{
    {
        // Skip when compiled with -DCCHAR_OBS_DISABLED: the merged
        // registry serializes empty, so there is nothing to assert.
        obs::MetricsRegistry probe;
        obs::ScopedObservability scoped{&probe};
        if (obs::metrics() == nullptr)
            GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    }
    SweepRunOptions opts;
    opts.policy.jobTimeoutSec = 0.25 * kDeadlineScale;
    opts.policy.maxRetries = 0;
    SweepResult result = SweepEngine{diagSpec("diag-spin")}.run(opts);
    ASSERT_TRUE(result.metrics != nullptr);

    std::ostringstream os;
    result.metrics->writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"sweep.quarantined\":1"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"sweep.retries\":0"), std::string::npos);
    // Resumed-job count is wall-clock-dependent, so the gauge must be
    // zeroed in the serialized registry like the worker gauges.
    EXPECT_NE(json.find("\"sweep.resumed_jobs\":0"),
              std::string::npos);
}

} // namespace
