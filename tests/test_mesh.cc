/**
 * @file
 * Unit and property tests for the 2-D mesh wormhole network simulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mesh/mesh.hh"
#include "stats/rng.hh"

namespace {

using namespace cchar;
using namespace cchar::mesh;
using desim::Simulator;
using desim::Task;
using trace::MessageKind;
using trace::MessageRecord;
using trace::TrafficLog;

MeshConfig
smallConfig()
{
    MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.flitBytes = 8;
    cfg.routerDelay = 0.04;
    cfg.flitTime = 0.01;
    return cfg;
}

Packet
pkt(int src, int dst, int bytes,
    MessageKind kind = MessageKind::Data)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.bytes = bytes;
    p.kind = kind;
    return p;
}

TEST(MeshGeometry, CoordinateMapping)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    EXPECT_EQ(net.nodeX(0), 0);
    EXPECT_EQ(net.nodeY(0), 0);
    EXPECT_EQ(net.nodeX(5), 1);
    EXPECT_EQ(net.nodeY(5), 1);
    EXPECT_EQ(net.nodeId(3, 2), 11);
    EXPECT_EQ(net.nodeId(net.nodeX(13), net.nodeY(13)), 13);
}

TEST(MeshGeometry, HopCountIsManhattan)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    EXPECT_EQ(net.hopCount(0, 0), 0);
    EXPECT_EQ(net.hopCount(0, 3), 3);
    EXPECT_EQ(net.hopCount(0, 15), 6);
    EXPECT_EQ(net.hopCount(5, 6), 1);
    EXPECT_EQ(net.hopCount(12, 3), 6);
}

TEST(MeshGeometry, FlitsIncludeHeader)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    EXPECT_EQ(net.flitsOf(0), 1);
    EXPECT_EQ(net.flitsOf(1), 2);
    EXPECT_EQ(net.flitsOf(8), 2);
    EXPECT_EQ(net.flitsOf(9), 3);
    EXPECT_EQ(net.flitsOf(64), 9);
}

TEST(MeshTransfer, NoLoadLatencyMatchesFormula)
{
    Simulator sim;
    TrafficLog log;
    MeshNetwork net{sim, smallConfig(), &log};
    MessageRecord out;
    sim.spawn([](MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(0, 3, 16)); // 3 hops, 3 flits
    }(net, out));
    sim.run();
    double expect = 3 * 0.04 + 3 * 0.01;
    EXPECT_NEAR(out.latency(), expect, 1e-12);
    EXPECT_DOUBLE_EQ(out.contention, 0.0);
    EXPECT_EQ(out.hops, 3);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.records()[0].dst, 3);
}

TEST(MeshTransfer, SelfTransferRejected)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    sim.spawn([](MeshNetwork &n) -> Task<void> {
        (void)co_await n.transfer(pkt(2, 2, 8));
    }(net));
    EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(MeshTransfer, OutOfRangeNodeRejected)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    sim.spawn([](MeshNetwork &n) -> Task<void> {
        (void)co_await n.transfer(pkt(0, 99, 8));
    }(net));
    EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(MeshTransfer, ContentionOnSharedChannel)
{
    // Two same-length messages over the same path injected together:
    // the second one must see queueing delay.
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    std::vector<MessageRecord> recs;
    auto sender = [](MeshNetwork &n, int src, int dst,
                     std::vector<MessageRecord> &out) -> Task<void> {
        out.push_back(co_await n.transfer(pkt(src, dst, 16)));
    };
    sim.spawn(sender(net, 0, 3, recs));
    sim.spawn(sender(net, 0, 3, recs));
    sim.run();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_DOUBLE_EQ(recs[0].contention, 0.0);
    EXPECT_GT(recs[1].contention, 0.0);
    EXPECT_GT(net.contentionStats().max(), 0.0);
}

TEST(MeshTransfer, DisjointPathsDoNotInterfere)
{
    // Row 0 and row 3 traffic share nothing under XY routing.
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    std::vector<MessageRecord> recs;
    auto sender = [](MeshNetwork &n, int src, int dst,
                     std::vector<MessageRecord> &out) -> Task<void> {
        out.push_back(co_await n.transfer(pkt(src, dst, 16)));
    };
    sim.spawn(sender(net, 0, 3, recs));
    sim.spawn(sender(net, 12, 15, recs));
    sim.run();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_DOUBLE_EQ(recs[0].contention, 0.0);
    EXPECT_DOUBLE_EQ(recs[1].contention, 0.0);
}

TEST(MeshTransfer, InjectionPortSerializesOneSource)
{
    // Different destinations but one source: injection serializes.
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    std::vector<MessageRecord> recs;
    auto sender = [](MeshNetwork &n, int dst,
                     std::vector<MessageRecord> &out) -> Task<void> {
        out.push_back(co_await n.transfer(pkt(5, dst, 8)));
    };
    sim.spawn(sender(net, 6, recs));
    sim.spawn(sender(net, 4, recs));
    sim.run();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_GT(recs[1].contention, 0.0);
}

TEST(MeshTransfer, DeliveredToDestinationQueueInOrder)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    std::vector<std::uint64_t> seen;
    sim.spawn([](MeshNetwork &n) -> Task<void> {
        Packet a = pkt(0, 1, 8);
        a.tag = 11;
        (void)co_await n.transfer(std::move(a));
        Packet b = pkt(0, 1, 8);
        b.tag = 22;
        (void)co_await n.transfer(std::move(b));
    }(net));
    sim.spawn([](MeshNetwork &n,
                 std::vector<std::uint64_t> &s) -> Task<void> {
        for (int i = 0; i < 2; ++i) {
            Packet p = co_await n.rxQueue(1).receive();
            s.push_back(p.tag);
        }
    }(net, seen));
    sim.run();
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{11, 22}));
}

TEST(MeshTransfer, PostIsFireAndForget)
{
    Simulator sim;
    TrafficLog log;
    MeshNetwork net{sim, smallConfig(), &log};
    net.post(pkt(0, 15, 32));
    sim.run();
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(net.messageCount(), 1u);
}

TEST(MeshTransfer, PayloadSurvivesDelivery)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    std::string got;
    Packet p = pkt(0, 1, 8);
    p.payload = std::string{"cacheline"};
    net.post(std::move(p));
    sim.spawn([](MeshNetwork &n, std::string &out) -> Task<void> {
        Packet q = co_await n.rxQueue(1).receive();
        out = std::any_cast<std::string>(q.payload);
    }(net, got));
    sim.run();
    EXPECT_EQ(got, "cacheline");
}

TEST(MeshTransfer, UtilizationAccountsBusyChannels)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    sim.spawn([](MeshNetwork &n) -> Task<void> {
        for (int i = 0; i < 50; ++i)
            (void)co_await n.transfer(pkt(0, 1, 64));
    }(net));
    sim.run();
    double t = sim.now();
    EXPECT_GT(net.averageChannelUtilization(t), 0.0);
    EXPECT_GT(net.maxChannelUtilization(t), 0.5);
    EXPECT_LE(net.maxChannelUtilization(t), 1.0 + 1e-9);
}

TEST(MeshTransfer, LongMessagesSerializeByLength)
{
    Simulator sim;
    MeshNetwork net{sim, smallConfig()};
    MessageRecord out;
    sim.spawn([](MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(0, 1, 4096));
    }(net, out));
    sim.run();
    // 1 hop * 0.04 + (1 + 512) flits * 0.01
    EXPECT_NEAR(out.latency(), 0.04 + 513 * 0.01, 1e-9);
}

TEST(MeshHolding, EarlyReleaseReducesContention)
{
    // A chain of messages along one long row: with full-pipeline
    // holding each message blocks the whole path; with early release
    // downstream channels free up one body-time later.
    auto runWith = [](ChannelHolding holding) {
        Simulator sim;
        MeshConfig cfg;
        cfg.width = 8;
        cfg.height = 1;
        cfg.holding = holding;
        MeshNetwork net{sim, cfg};
        auto sender = [](MeshNetwork &n, int src) -> Task<void> {
            for (int i = 0; i < 10; ++i)
                (void)co_await n.transfer(pkt(src, 7, 256));
        };
        for (int src = 0; src < 4; ++src)
            sim.spawn(sender(net, src));
        sim.run();
        return net.contentionStats().mean();
    };
    double full = runWith(ChannelHolding::FullPipeline);
    double early = runWith(ChannelHolding::EarlyRelease);
    EXPECT_LT(early, full);
    EXPECT_GT(full, 0.0);
}

TEST(MeshProperty, RandomTrafficAlwaysDrains)
{
    // Deadlock-freedom regression: XY routing with ordered channel
    // acquisition must complete any random workload.
    Simulator sim;
    TrafficLog log;
    MeshNetwork net{sim, smallConfig(), &log};
    stats::Rng rng{2024};
    int expected = 0;
    auto sender = [](MeshNetwork &n, Simulator &s, int src, int dst,
                     int bytes, double start) -> Task<void> {
        co_await s.delay(start);
        (void)co_await n.transfer(pkt(src, dst, bytes));
    };
    for (int i = 0; i < 2000; ++i) {
        int src = static_cast<int>(rng.below(16));
        int dst = static_cast<int>(rng.below(16));
        if (src == dst)
            continue;
        int bytes = 8 + static_cast<int>(rng.below(64)) * 8;
        double start = rng.uniform(0.0, 50.0);
        sim.spawn(sender(net, sim, src, dst, bytes, start));
        ++expected;
    }
    sim.run();
    EXPECT_TRUE(sim.allProcessesDone());
    EXPECT_EQ(log.size(), static_cast<std::size_t>(expected));
    // Sanity of every record.
    for (const auto &r : log.records()) {
        EXPECT_GE(r.contention, 0.0);
        EXPECT_GE(r.latency(),
                  net.noLoadLatency(r.hops, r.bytes) - 1e-9);
        EXPECT_EQ(r.hops, net.hopCount(r.src, r.dst));
    }
}

TEST(MeshProperty, DeterministicAcrossRuns)
{
    auto runOnce = [] {
        Simulator sim;
        TrafficLog log;
        MeshNetwork net{sim, smallConfig(), &log};
        stats::Rng rng{7};
        auto sender = [](MeshNetwork &n, Simulator &s, int src, int dst,
                         double start) -> Task<void> {
            co_await s.delay(start);
            (void)co_await n.transfer(pkt(src, dst, 32));
        };
        for (int i = 0; i < 300; ++i) {
            int src = static_cast<int>(rng.below(16));
            int dst = (src + 1 + static_cast<int>(rng.below(15))) % 16;
            sim.spawn(sender(net, sim, src, dst, rng.uniform(0.0, 10.0)));
        }
        sim.run();
        std::vector<double> sig;
        for (const auto &r : log.records()) {
            sig.push_back(r.injectTime);
            sig.push_back(r.deliverTime);
            sig.push_back(r.src * 100.0 + r.dst);
        }
        return sig;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(MeshConfigValidation, RejectsDegenerateDimensions)
{
    Simulator sim;
    MeshConfig cfg;
    cfg.width = 0;
    EXPECT_THROW(MeshNetwork(sim, cfg), std::invalid_argument);
}

} // namespace

// --------------------------------------------------------------------
// Torus topology and virtual channels (extension tests)

namespace {

MeshConfig
torusConfig(int w = 4, int h = 4, int vcs = 2)
{
    MeshConfig cfg = smallConfig();
    cfg.width = w;
    cfg.height = h;
    cfg.topology = Topology::Torus;
    cfg.virtualChannels = vcs;
    return cfg;
}

TEST(Torus, RequiresTwoVirtualChannels)
{
    Simulator sim;
    MeshConfig cfg = smallConfig();
    cfg.topology = Topology::Torus;
    cfg.virtualChannels = 1;
    EXPECT_THROW(MeshNetwork(sim, cfg), std::invalid_argument);
}

TEST(Torus, WrapHalvesWorstCaseHops)
{
    Simulator sim;
    MeshNetwork net{sim, torusConfig()};
    // Mesh distance 0 -> 3 is 3 hops; torus wraps in 1.
    EXPECT_EQ(net.hopCount(0, 3), 1);
    // Opposite corners: mesh 6, torus wraps both dimensions -> 1+1.
    EXPECT_EQ(net.hopCount(0, 15), 2);
    EXPECT_EQ(net.hopCount(0, 10), 4); // half-way both dims
    EXPECT_EQ(net.hopCount(5, 6), 1);
}

TEST(Torus, WrapLatencyMatchesShortRoute)
{
    Simulator sim;
    MeshNetwork net{sim, torusConfig()};
    trace::MessageRecord out;
    sim.spawn([](MeshNetwork &n, trace::MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(0, 3, 16)); // 1 wrap hop west
    }(net, out));
    sim.run();
    EXPECT_EQ(out.hops, 1);
    EXPECT_NEAR(out.latency(), net.noLoadLatency(1, 16), 1e-12);
}

TEST(Torus, AdversarialRingTrafficDrains)
{
    // Every node of each row sends half-way around its ring — the
    // canonical torus deadlock scenario without datelines. With the
    // dateline VC scheme the workload must drain.
    Simulator sim;
    TrafficLog log;
    MeshNetwork net{sim, torusConfig(8, 1, 2), &log};
    auto sender = [](MeshNetwork &n, int src) -> Task<void> {
        for (int i = 0; i < 20; ++i)
            (void)co_await n.transfer(pkt(src, (src + 4) % 8, 256));
    };
    for (int src = 0; src < 8; ++src)
        sim.spawn(sender(net, src));
    sim.run();
    EXPECT_TRUE(sim.allProcessesDone());
    EXPECT_EQ(log.size(), 160u);
}

TEST(Torus, RandomTrafficDrains)
{
    Simulator sim;
    TrafficLog log;
    MeshNetwork net{sim, torusConfig(4, 4, 2), &log};
    cchar::stats::Rng rng{31};
    int expected = 0;
    auto sender = [](MeshNetwork &n, Simulator &s, int src, int dst,
                     double start) -> Task<void> {
        co_await s.delay(start);
        (void)co_await n.transfer(pkt(src, dst, 64));
    };
    for (int i = 0; i < 1500; ++i) {
        int src = static_cast<int>(rng.below(16));
        int dst = static_cast<int>(rng.below(16));
        if (src == dst)
            continue;
        sim.spawn(sender(net, sim, src, dst, rng.uniform(0.0, 30.0)));
        ++expected;
    }
    sim.run();
    EXPECT_TRUE(sim.allProcessesDone());
    EXPECT_EQ(log.size(), static_cast<std::size_t>(expected));
    for (const auto &r : log.records())
        EXPECT_EQ(r.hops, net.hopCount(r.src, r.dst));
}

TEST(Torus, LowersAverageHopsVsMesh)
{
    Simulator simA, simB;
    MeshNetwork mesh{simA, smallConfig()};
    MeshNetwork torus{simB, torusConfig()};
    double meshHops = 0.0, torusHops = 0.0;
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            meshHops += mesh.hopCount(s, d);
            torusHops += torus.hopCount(s, d);
        }
    }
    EXPECT_LT(torusHops, meshHops);
}

TEST(VirtualChannels, ReduceHeadOfLineBlockingOnMesh)
{
    // Cross traffic over one shared column link: with more VCs the
    // same workload sees less contention.
    auto runWith = [](int vcs) {
        Simulator sim;
        MeshConfig cfg = smallConfig();
        cfg.virtualChannels = vcs;
        MeshNetwork net{sim, cfg};
        auto sender = [](MeshNetwork &n, int src, int dst) -> Task<void> {
            for (int i = 0; i < 20; ++i)
                (void)co_await n.transfer(pkt(src, dst, 256));
        };
        sim.spawn(sender(net, 0, 12)); // column 0 downward...
        sim.spawn(sender(net, 0, 12));
        sim.spawn(sender(net, 0, 12));
        sim.run();
        return net.contentionStats().mean();
    };
    EXPECT_LE(runWith(4), runWith(1));
}

TEST(VirtualChannels, RejectNonPositiveCount)
{
    Simulator sim;
    MeshConfig cfg = smallConfig();
    cfg.virtualChannels = 0;
    EXPECT_THROW(MeshNetwork(sim, cfg), std::invalid_argument);
}

TEST(Torus, WorksUnderTheFullMachine)
{
    // The whole CC-NUMA stack must run unchanged on a torus.
    Simulator sim;
    MeshConfig torus = torusConfig(2, 2, 2);
    (void)torus;
    SUCCEED(); // machine-level coverage lives in test_ccnuma
}

} // namespace
