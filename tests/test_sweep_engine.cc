/**
 * @file
 * Tests for the deterministic parallel sweep engine: spec expansion
 * (canonical order, range parsing, validation), mesh factorization,
 * the JSON spec form, per-worker metric merging, and the central
 * guarantee — the merged report is byte-identical for any worker
 * count, including matrices whose jobs fail.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/status.hh"
#include "obs/registry.hh"
#include "sweep/engine.hh"
#include "sweep/spec.hh"

namespace {

using namespace cchar;
using sweep::SweepEngine;
using sweep::SweepJob;
using sweep::SweepResult;
using sweep::SweepSpec;

// --------------------------------------------------------------------
// Spec parsing and expansion

TEST(SweepSpec, MeshFactorIsNearSquare)
{
    int w = 0, h = 0;
    sweep::meshFactor(16, w, h);
    EXPECT_EQ(w, 4);
    EXPECT_EQ(h, 4);
    sweep::meshFactor(8, w, h);
    EXPECT_EQ(w, 4);
    EXPECT_EQ(h, 2);
    sweep::meshFactor(7, w, h); // prime: degenerates to a chain
    EXPECT_EQ(w, 7);
    EXPECT_EQ(h, 1);
    sweep::meshFactor(1, w, h);
    EXPECT_EQ(w, 1);
    EXPECT_EQ(h, 1);
    EXPECT_THROW(sweep::meshFactor(0, w, h), core::CCharError);
}

TEST(SweepSpec, ParseSeedsSupportsRanges)
{
    auto seeds = sweep::parseSeeds("1,4..6,10");
    ASSERT_EQ(seeds.size(), 5u);
    EXPECT_EQ(seeds[0], 1u);
    EXPECT_EQ(seeds[1], 4u);
    EXPECT_EQ(seeds[2], 5u);
    EXPECT_EQ(seeds[3], 6u);
    EXPECT_EQ(seeds[4], 10u);
    EXPECT_THROW(sweep::parseSeeds("5..1"), core::CCharError);
    EXPECT_THROW(sweep::parseSeeds("x"), core::CCharError);
}

TEST(SweepSpec, ExpansionOrderIsCanonical)
{
    SweepSpec spec;
    spec.apps = {"is", "sor"};
    spec.procs = {4, 16};
    spec.loads = {1.0, 2.0};
    spec.seeds = {0, 7};
    spec.faultPlans = {"", "drop:p=0.5"};

    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 32u); // 2*2*2*2*2

    // apps outermost ... fault plans innermost; index == position.
    EXPECT_EQ(jobs[0].app, "is");
    EXPECT_EQ(jobs[0].procs, 4);
    EXPECT_EQ(jobs[0].load, 1.0);
    EXPECT_EQ(jobs[0].seed, 0u);
    EXPECT_EQ(jobs[0].faultPlan, "");
    EXPECT_EQ(jobs[1].faultPlan, "drop:p=0.5");
    EXPECT_EQ(jobs[2].seed, 7u);
    EXPECT_EQ(jobs[4].load, 2.0);
    EXPECT_EQ(jobs[8].procs, 16);
    EXPECT_EQ(jobs[16].app, "sor");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST(SweepSpec, ExpansionValidates)
{
    SweepSpec spec;
    spec.apps = {"no-such-app"};
    spec.procs = {4};
    EXPECT_THROW(spec.expand(), core::CCharError);

    spec.apps = {"is"};
    spec.procs = {0};
    EXPECT_THROW(spec.expand(), core::CCharError);

    spec.procs = {4};
    spec.loads = {-1.0};
    EXPECT_THROW(spec.expand(), core::CCharError);

    spec.loads = {1.0};
    spec.faultPlans = {"garbage:xyz"};
    EXPECT_THROW(spec.expand(), core::CCharError);
}

TEST(SweepSpec, JsonFormRoundTrips)
{
    const std::string text = R"({"apps": ["is", "sor"],
        "procs": [4, 16], "loads": [1.0, 2.0], "seeds": [1, 2],
        "fault_plans": ["none", "drop:p=0.001"],
        "torus": false, "vcs": 1})";
    SweepSpec spec = SweepSpec::fromJson(text);
    EXPECT_EQ(spec.apps, (std::vector<std::string>{"is", "sor"}));
    EXPECT_EQ(spec.procs, (std::vector<int>{4, 16}));
    EXPECT_EQ(spec.loads, (std::vector<double>{1.0, 2.0}));
    EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_FALSE(spec.torus);
    EXPECT_EQ(spec.vcs, 1);
    auto jobs = spec.expand();
    EXPECT_EQ(jobs.size(), 32u);
    EXPECT_EQ(jobs[0].faultPlan, ""); // "none" normalizes to healthy

    EXPECT_THROW(SweepSpec::fromJson("{\"bogus\": 1}"),
                 core::CCharError);
    EXPECT_THROW(SweepSpec::fromJson("not json"), core::CCharError);
}

// --------------------------------------------------------------------
// Metrics merging

TEST(SweepMerge, MergeFromFoldsCountersGaugesHistograms)
{
#ifdef CCHAR_OBS_DISABLED
    GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
#endif
    obs::MetricsRegistry a, b;
    a.counter("c").add(3);
    b.counter("c").add(4);
    b.counter("only_b").add(1);
    a.gauge("g").high(2.0);
    b.gauge("g").high(5.0);
    a.histogram("h").record(1.0);
    b.histogram("h").record(100.0);
    b.histogram("h").record(2.0);

    a.mergeFrom(b);
    EXPECT_EQ(a.counterValue("c"), 7u);
    EXPECT_EQ(a.counterValue("only_b"), 1u);
    EXPECT_DOUBLE_EQ(a.gaugeValue("g"), 5.0);

    std::ostringstream os;
    a.writeJson(os);
    const std::string dump = os.str();
    EXPECT_NE(dump.find("\"h\""), std::string::npos);
}

// --------------------------------------------------------------------
// Engine determinism

std::string
runMatrix(int workers)
{
    SweepSpec spec;
    spec.apps = {"is", "3d-fft"};
    spec.procs = {4};
    spec.loads = {1.0, 2.0};
    spec.seeds = {0};
    spec.faultPlans = {"", "drop:p=0.001"};

    SweepEngine engine{spec};
    SweepResult result = engine.run(workers);
    std::ostringstream json, csv;
    result.writeJson(json);
    result.writeCsv(csv);
    return json.str() + "\n--csv--\n" + csv.str();
}

TEST(SweepEngine, WorkerCountNeverChangesOutput)
{
    const std::string serial = runMatrix(1);
    EXPECT_EQ(runMatrix(4), serial);
    // Oversubscribed: more workers than jobs must also be identical.
    EXPECT_EQ(runMatrix(16), serial);
}

TEST(SweepEngine, OutcomesCarryJobAttribution)
{
    SweepSpec spec;
    spec.apps = {"is"};
    spec.procs = {4};
    SweepEngine engine{spec};
    SweepResult result = engine.run(2);
    ASSERT_EQ(result.outcomes.size(), 1u);
    const auto &o = result.outcomes[0];
    EXPECT_EQ(o.job.app, "is");
    EXPECT_EQ(o.status, "ok");
    EXPECT_TRUE(o.verified);
    EXPECT_GT(o.messages, 0u);
    EXPECT_GT(o.makespan, 0.0);
    EXPECT_EQ(result.failures(), 0u);
}

TEST(SweepEngine, FailedJobsAreRecordedNotThrown)
{
    SweepSpec spec;
    spec.apps = {"is"};
    spec.procs = {4};
    spec.seeds = {7};
    spec.faultPlans = {"drop:p=0.001"};
    SweepEngine engine{spec};
    SweepResult result = engine.run(1);
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_NE(result.outcomes[0].status, "ok");
    EXPECT_FALSE(result.outcomes[0].error.empty());
    EXPECT_EQ(result.failures(), 1u);
}

} // namespace
