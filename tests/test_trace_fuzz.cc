/**
 * @file
 * Seeded, deterministic fuzz tests for the trace loader.
 *
 * Strategy: generate a valid "cchar-trace v1" document, then apply
 * mutations that are *guaranteed* to make the targeted record lines
 * malformed (field deletion, junk fields, out-of-range ids, trailing
 * fields, binary garbage). Because every mutation is known-bad, the
 * lenient loader's skip count must equal the mutation count exactly —
 * not "roughly survive", but account for every damaged record. The
 * strict loader must reject the same documents with ParseError
 * (process exit code 3), never abort.
 *
 * All randomness flows from fixed stats::Rng seeds; the same corpus
 * is fuzzed on every run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/status.hh"
#include "stats/stats.hh"
#include "trace/trace.hh"

namespace {

using namespace cchar;

trace::Trace
makeValidTrace(stats::Rng &rng, int nprocs, int nevents)
{
    trace::Trace t{nprocs};
    for (int i = 0; i < nevents; ++i) {
        trace::TraceEvent ev;
        ev.src = static_cast<std::int32_t>(rng.below(
            static_cast<std::uint64_t>(nprocs)));
        ev.dst = static_cast<std::int32_t>(rng.below(
            static_cast<std::uint64_t>(nprocs)));
        ev.bytes = static_cast<std::int32_t>(rng.below(4096));
        switch (rng.below(3)) {
        case 0:
            ev.kind = trace::MessageKind::Data;
            break;
        case 1:
            ev.kind = trace::MessageKind::Control;
            break;
        default:
            ev.kind = trace::MessageKind::Sync;
            break;
        }
        ev.sinceLast = rng.uniform(0.0, 50.0);
        t.add(ev);
    }
    return t;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is{text};
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const auto &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

/** Mutate one event line so it can never parse as a valid record. */
std::string
breakLine(stats::Rng &rng, const std::string &line, int nprocs)
{
    switch (rng.below(6)) {
    case 0: // truncate to fewer than five fields
        return line.substr(0, line.find(' '));
    case 1: // non-numeric junk in a numeric field
        return "x" + line;
    case 2: // unknown message kind token
        return "0 0 8 bogus-kind 1.0";
    case 3: // node id out of range
        return std::to_string(nprocs + 7) + " 0 8 data 1.0";
    case 4: // trailing fields
        return line + " extra trailing junk";
    default: { // binary garbage
        std::string junk;
        for (int i = 0; i < 12; ++i)
            junk += static_cast<char>(1 + rng.below(8)); // control bytes
        return junk;
    }
    }
}

struct FuzzDoc
{
    std::string text;
    std::size_t validEvents = 0;
    std::size_t broken = 0;
};

/** A valid document with `nbreak` distinct record lines broken. */
FuzzDoc
makeFuzzDoc(std::uint64_t seed, int nprocs, int nevents, int nbreak)
{
    stats::Rng rng{seed};
    trace::Trace t = makeValidTrace(rng, nprocs, nevents);
    std::ostringstream os;
    t.save(os);
    std::vector<std::string> lines = splitLines(os.str());

    std::vector<bool> damaged(lines.size(), false);
    int broken = 0;
    while (broken < nbreak) {
        // Line 0 is the header; only event lines are mutated here.
        std::size_t idx =
            1 + rng.below(static_cast<std::uint64_t>(nevents));
        if (damaged[idx])
            continue;
        damaged[idx] = true;
        lines[idx] = breakLine(rng, lines[idx], nprocs);
        ++broken;
    }

    FuzzDoc doc;
    doc.text = joinLines(lines);
    doc.validEvents = static_cast<std::size_t>(nevents - nbreak);
    doc.broken = static_cast<std::size_t>(nbreak);
    return doc;
}

// --------------------------------------------------------------------
// Lenient mode: never crashes, exact skip accounting

TEST(TraceFuzz, LenientSkipCountsAreExact)
{
    trace::TraceLoadOptions lenient;
    lenient.errors = trace::ErrorMode::Lenient;

    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        stats::Rng meta{seed * 977};
        int nprocs = 2 + static_cast<int>(meta.below(15));
        int nevents = 8 + static_cast<int>(meta.below(40));
        int nbreak = 1 + static_cast<int>(
                             meta.below(static_cast<std::uint64_t>(
                                 nevents > 8 ? 8 : nevents)));
        FuzzDoc doc = makeFuzzDoc(seed, nprocs, nevents, nbreak);

        std::istringstream is{doc.text};
        trace::Trace loaded = trace::Trace::load(is, lenient);

        EXPECT_EQ(loaded.skippedRecords(), doc.broken)
            << "seed " << seed;
        EXPECT_EQ(loaded.size(), doc.validEvents) << "seed " << seed;
        EXPECT_EQ(loaded.nprocs(), nprocs) << "seed " << seed;
    }
}

TEST(TraceFuzz, LenientSurvivesTruncatedDocuments)
{
    trace::TraceLoadOptions lenient;
    lenient.errors = trace::ErrorMode::Lenient;

    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        stats::Rng rng{seed * 31};
        trace::Trace t = makeValidTrace(rng, 8, 24);
        std::ostringstream os;
        t.save(os);
        std::string text = os.str();

        // Chop the document mid-stream (possibly mid-line). Keep at
        // least the header line.
        std::size_t headerEnd = text.find('\n') + 1;
        std::size_t cut =
            headerEnd + rng.below(text.size() - headerEnd);
        std::istringstream is{text.substr(0, cut)};

        trace::Trace loaded = trace::Trace::load(is, lenient);
        // Every record the header promised is either loaded or
        // accounted for as skipped — nothing silently vanishes.
        EXPECT_EQ(loaded.size() + loaded.skippedRecords(), 24u)
            << "seed " << seed;
    }
}

TEST(TraceFuzz, LenientNeverCrashesOnBinaryJunk)
{
    trace::TraceLoadOptions lenient;
    lenient.errors = trace::ErrorMode::Lenient;

    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        stats::Rng rng{seed * 131};
        std::string junk;
        std::size_t len = 1 + rng.below(512);
        for (std::size_t i = 0; i < len; ++i)
            junk += static_cast<char>(rng.below(256));

        std::istringstream is{junk};
        // A garbage header is never recoverable: the documented
        // behaviour is a ParseError (CLI exit 3), not a crash and
        // not an uncaught abort.
        try {
            (void)trace::Trace::load(is, lenient);
            // Astronomically unlikely, but if the junk happened to
            // parse, that is not a failure of the "never crashes"
            // property.
        } catch (const core::CCharError &err) {
            EXPECT_EQ(core::exitCodeOf(err.status().code()), 3)
                << "seed " << seed;
        }
    }
}

// --------------------------------------------------------------------
// Strict mode: same corpus must exit 3

TEST(TraceFuzz, StrictModeRejectsEveryMutatedDocument)
{
    trace::TraceLoadOptions strict;
    strict.errors = trace::ErrorMode::Strict;

    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        FuzzDoc doc = makeFuzzDoc(seed, 8, 24, 3);
        std::istringstream is{doc.text};
        try {
            (void)trace::Trace::load(is, strict);
            FAIL() << "strict load accepted a mutated document, seed "
                   << seed;
        } catch (const core::CCharError &err) {
            EXPECT_EQ(err.status().code(), core::StatusCode::ParseError)
                << "seed " << seed;
            EXPECT_EQ(core::exitCodeOf(err.status().code()), 3)
                << "seed " << seed;
        }
    }
}

TEST(TraceFuzz, StrictAndLenientAgreeOnCleanDocuments)
{
    trace::TraceLoadOptions lenient;
    lenient.errors = trace::ErrorMode::Lenient;

    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        stats::Rng rng{seed * 733};
        trace::Trace t = makeValidTrace(rng, 6, 30);
        std::ostringstream os;
        t.save(os);

        std::istringstream is1{os.str()};
        std::istringstream is2{os.str()};
        trace::Trace a = trace::Trace::load(is1);
        trace::Trace b = trace::Trace::load(is2, lenient);

        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(a.skippedRecords(), 0u);
        EXPECT_EQ(b.skippedRecords(), 0u);
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a.events()[i].src, b.events()[i].src);
            EXPECT_EQ(a.events()[i].dst, b.events()[i].dst);
            EXPECT_EQ(a.events()[i].bytes, b.events()[i].bytes);
        }
    }
}

} // namespace
