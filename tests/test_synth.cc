/**
 * @file
 * Round-trip golden suite for the synthesis loop:
 *
 *     characterize -> model JSON -> synthesize -> re-characterize
 *
 * For real applications (1d-fft and is on the dynamic strategy, mg on
 * the static one) the suite asserts that a replay of the fitted model
 * — at the original scale AND re-projected onto 4x the processors with
 * 10x the messages — stays within committed per-attribute KS
 * thresholds of the model. Plus the determinism contract (the same
 * model and seed produce byte-identical traffic) and the gating
 * contract (a report analyzed without synthesis renders exactly as
 * before: no "synthFidelity" key, no "Synthesis fidelity" section).
 *
 * The KS thresholds are deliberately loose relative to what the seeds
 * actually achieve (see tools/ CLI goldens for exact values): they
 * bound regressions in the samplers and the scaling remap, not
 * sampling noise.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "apps/registry.hh"
#include "core/core.hh"

namespace {

using namespace cchar;
using core::CharacterizationReport;
using core::SyntheticModel;
using core::SyntheticTrafficGenerator;
using core::SynthRunOptions;

// Committed fidelity thresholds of the round-trip suite. A replay of
// a model drawn from the model itself measures pure sampling error;
// anything near these bounds means a sampler or the scaling remap is
// distorting an attribute.
constexpr double kTemporalKsMax = 0.10;
constexpr double kSpatialKsMax = 0.06;
constexpr double kVolumeKsMax = 0.05;

CharacterizationReport
characterizeApp(const std::string &name)
{
    core::CharacterizationPipeline pipeline;
    if (auto app = apps::makeSharedMemoryApp(name)) {
        ccnuma::MachineConfig cfg;
        cfg.mesh.width = 4;
        cfg.mesh.height = 4;
        return pipeline.runDynamic(*app, cfg);
    }
    auto mpApp = apps::makeMessagePassingApp(name);
    EXPECT_NE(mpApp, nullptr) << name;
    mp::MpConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    return pipeline.runStatic(*mpApp, cfg);
}

std::string
reportJson(const CharacterizationReport &report)
{
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

void
expectFidelityBounded(const core::SynthesisFidelity &sf,
                      const std::string &label)
{
    EXPECT_TRUE(sf.enabled) << label;
    EXPECT_GT(sf.temporalSources, 0u) << label;
    EXPECT_LT(sf.temporalKs, kTemporalKsMax) << label;
    EXPECT_LT(sf.spatialKs, kSpatialKsMax) << label;
    EXPECT_LT(sf.volumeKs, kVolumeKsMax) << label;
}

// --------------------------------------------------------------------
// Round trip at the originating scale

class SynthRoundTrip : public ::testing::TestWithParam<const char *>
{};

TEST_P(SynthRoundTrip, ModelReplayKsBounded)
{
    const std::string app = GetParam();
    CharacterizationReport report = characterizeApp(app);

    // The loop under test is the serialized one: report -> JSON ->
    // model, exactly what `cchar synth` consumes.
    SyntheticModel model = SyntheticModel::fromJson(reportJson(report));
    EXPECT_EQ(model.nprocs, 16);
    EXPECT_EQ(model.application, app);
    ASSERT_FALSE(model.sources.empty());

    core::DriveResult synth =
        SyntheticTrafficGenerator::run(model, SynthRunOptions{});
    EXPECT_EQ(synth.log.size(), model.totalMessages());

    core::SynthesisFidelity sf =
        core::computeSynthFidelity(model, synth.log);
    expectFidelityBounded(sf, app + " @1x");
}

TEST_P(SynthRoundTrip, ScaledReplayKsBounded)
{
    const std::string app = GetParam();
    CharacterizationReport report = characterizeApp(app);
    SyntheticModel model = SyntheticModel::fromJson(reportJson(report));

    const std::size_t target = 10 * model.totalMessages();
    SyntheticModel scaled = model.scaleTo(64, target);
    EXPECT_EQ(scaled.mesh.nodes(), 64);
    EXPECT_EQ(scaled.nprocs, 64);
    EXPECT_EQ(scaled.sources.size(), 4 * model.sources.size());
    // Per-source rounding may drift the total by at most half a
    // message per source.
    EXPECT_NEAR(static_cast<double>(scaled.totalMessages()),
                static_cast<double>(target),
                static_cast<double>(scaled.sources.size()));

    core::DriveResult synth =
        SyntheticTrafficGenerator::run(scaled, SynthRunOptions{});
    EXPECT_EQ(synth.log.nprocs(), 64);
    EXPECT_EQ(synth.log.size(), scaled.totalMessages());

    core::SynthesisFidelity sf =
        core::computeSynthFidelity(scaled, synth.log);
    expectFidelityBounded(sf, app + " @4x/10x");
}

INSTANTIATE_TEST_SUITE_P(Apps, SynthRoundTrip,
                         ::testing::Values("1d-fft", "is", "mg"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// --------------------------------------------------------------------
// Determinism

TEST(SynthDeterminism, SameModelAndSeedProduceIdenticalTraffic)
{
    CharacterizationReport report = characterizeApp("is");
    SyntheticModel model = SyntheticModel::fromJson(reportJson(report));

    auto runOnce = [&model] {
        return SyntheticTrafficGenerator::run(model, SynthRunOptions{});
    };
    core::DriveResult a = runOnce();
    core::DriveResult b = runOnce();

    ASSERT_EQ(a.log.size(), b.log.size());
    for (std::size_t i = 0; i < a.log.size(); ++i) {
        const auto &ra = a.log.records()[i];
        const auto &rb = b.log.records()[i];
        EXPECT_EQ(ra.src, rb.src) << i;
        EXPECT_EQ(ra.dst, rb.dst) << i;
        EXPECT_EQ(ra.bytes, rb.bytes) << i;
        EXPECT_EQ(ra.injectTime, rb.injectTime) << i;
        EXPECT_EQ(ra.deliverTime, rb.deliverTime) << i;
    }
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.latencyMean, b.latencyMean);
}

TEST(SynthDeterminism, DifferentSeedsProduceDifferentTraffic)
{
    CharacterizationReport report = characterizeApp("is");
    SyntheticModel model = SyntheticModel::fromJson(reportJson(report));

    SynthRunOptions sa;
    sa.seed = 1;
    SynthRunOptions sb;
    sb.seed = 2;
    core::DriveResult a = SyntheticTrafficGenerator::run(model, sa);
    core::DriveResult b = SyntheticTrafficGenerator::run(model, sb);
    ASSERT_EQ(a.log.size(), b.log.size());
    EXPECT_NE(a.makespan, b.makespan);
}

// --------------------------------------------------------------------
// Scaling semantics

TEST(SynthScaling, RejectsNonMultipleProcs)
{
    CharacterizationReport report = characterizeApp("is");
    SyntheticModel model = SyntheticModel::fromJson(reportJson(report));
    EXPECT_THROW((void)model.scaleTo(17, 0), core::CCharError);
    EXPECT_THROW((void)model.scaleTo(8, 0), core::CCharError);
}

TEST(SynthScaling, TilePreservesDestinationLocality)
{
    CharacterizationReport report = characterizeApp("is");
    SyntheticModel model = SyntheticModel::fromJson(reportJson(report));
    SyntheticModel scaled = model.scaleTo(64, 0);

    // Every cloned source's destination mass stays inside its own
    // 4x4 tile of the 8x8 board — the remap preserves the original
    // hop-distance structure instead of smearing traffic globally.
    const int W = scaled.mesh.width; // 8
    for (const auto &sm : scaled.sources) {
        int tileX = (sm.source % W) / model.mesh.width;
        int tileY = (sm.source / W) / model.mesh.height;
        const auto &p = sm.destination.probabilities();
        for (std::size_t d = 0; d < p.size(); ++d) {
            if (p[d] <= 0.0)
                continue;
            int dx = (static_cast<int>(d) % W) / model.mesh.width;
            int dy = (static_cast<int>(d) / W) / model.mesh.height;
            EXPECT_EQ(dx, tileX) << "source " << sm.source;
            EXPECT_EQ(dy, tileY) << "source " << sm.source;
        }
    }
}

TEST(SynthScaling, MessageScaleKeepsPerSourceProportions)
{
    CharacterizationReport report = characterizeApp("is");
    SyntheticModel model = SyntheticModel::fromJson(reportJson(report));
    const std::size_t total = model.totalMessages();
    SyntheticModel scaled = model.scaleTo(0, 5 * total);

    ASSERT_EQ(scaled.sources.size(), model.sources.size());
    for (std::size_t i = 0; i < model.sources.size(); ++i) {
        EXPECT_NEAR(static_cast<double>(scaled.sources[i].messageCount),
                    5.0 *
                        static_cast<double>(model.sources[i].messageCount),
                    1.0)
            << "source " << i;
    }
}

// --------------------------------------------------------------------
// Gating: reports produced without synthesis are unchanged

TEST(SynthGating, ReportWithoutSynthesisHasNoFidelitySection)
{
    CharacterizationReport report = characterizeApp("is");
    EXPECT_FALSE(report.synthFidelity.enabled);

    std::string json = reportJson(report);
    EXPECT_EQ(json.find("synthFidelity"), std::string::npos);

    std::ostringstream text;
    report.print(text);
    EXPECT_EQ(text.str().find("Synthesis fidelity"), std::string::npos);
}

TEST(SynthGating, FidelitySectionAppearsWhenEnabled)
{
    CharacterizationReport report = characterizeApp("is");
    SyntheticModel model = SyntheticModel::fromJson(reportJson(report));
    core::DriveResult synth =
        SyntheticTrafficGenerator::run(model, SynthRunOptions{});
    report.synthFidelity = core::computeSynthFidelity(model, synth.log);
    report.synthFidelity.modelSource = "unit-test";

    std::string json = reportJson(report);
    EXPECT_NE(json.find("\"synthFidelity\":{"), std::string::npos);
    EXPECT_NE(json.find("\"modelSource\":\"unit-test\""),
              std::string::npos);

    std::ostringstream text;
    report.print(text);
    EXPECT_NE(text.str().find("Synthesis fidelity"), std::string::npos);
}

// --------------------------------------------------------------------
// The legacy --synthetic validation path rides on the same generator

TEST(SynthLegacy, ValidateModelMatchesDirectGeneration)
{
    CharacterizationReport report = characterizeApp("is");
    core::ValidationResult v = core::validateModel(report);

    SyntheticModel model = SyntheticModel::fromReport(report);
    core::DriveResult direct =
        SyntheticTrafficGenerator::run(model, SynthRunOptions{});
    EXPECT_DOUBLE_EQ(v.syntheticLatencyMean, direct.latencyMean);
    EXPECT_DOUBLE_EQ(v.originalLatencyMean, report.network.latencyMean);
}

} // namespace
