/**
 * @file
 * Tests for the per-link network-weather layer: tracker semantics
 * (interning, lazy EarlyRelease closing, queue-depth integrals,
 * window folding, capacity caps), exact agreement between the sink
 * and the mesh's own channel-utilization statistics, the weather
 * analyzer on synthetic loads with known utilization / Gini /
 * congestion-knee answers, report gating (default outputs carry no
 * link-stats artifacts), HTML determinism, and a fault-provoked
 * end-to-end run where a router stall raises a ranked hotspot.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>

#include "core/analyzers.hh"
#include "core/report.hh"
#include "core/report_html.hh"
#include "mesh/mesh.hh"
#include "obs/obs.hh"
#include "sweep/engine.hh"
#include "sweep/spec.hh"

namespace {

using namespace cchar;
using obs::kLinkInject;
using obs::LinkStatsTracker;

/** False when the tree was compiled with -DCCHAR_OBS_DISABLED. */
bool
obsEnabled()
{
    obs::MetricsRegistry probe;
    obs::ScopedObservability scoped{&probe};
    return obs::metrics() != nullptr;
}

mesh::MeshConfig
mesh2x2()
{
    mesh::MeshConfig cfg;
    cfg.width = 2;
    cfg.height = 2;
    cfg.flitBytes = 8;
    cfg.routerDelay = 0.04;
    cfg.flitTime = 0.01;
    return cfg;
}

// --------------------------------------------------------------------
// Tracker semantics

TEST(LinkStatsTracker, DeclareInternsStableIds)
{
    LinkStatsTracker t;
    int a = t.declareLink(0, 0, 0);
    int b = t.declareLink(0, 1, 0);
    int inj = t.declareLink(0, kLinkInject, 0);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(inj, 2);
    EXPECT_EQ(t.declareLink(0, 0, 0), a); // re-declare: same id
    EXPECT_EQ(t.links(), 3);
    EXPECT_EQ(t.channelLinks(), 2); // injection port excluded
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(LinkStatsTracker, CapRefusesAndCountsDropped)
{
    LinkStatsTracker t{/*maxLinks=*/2};
    EXPECT_GE(t.declareLink(0, 0, 0), 0);
    EXPECT_GE(t.declareLink(0, 1, 0), 0);
    int refused = t.declareLink(0, 2, 0);
    EXPECT_EQ(refused, -1);
    EXPECT_EQ(t.links(), 2);
    t.onAcquire(refused, 1.0, 0.0, 64); // fact on a refused link
    EXPECT_EQ(t.dropped(), 2u);
}

TEST(LinkStatsTracker, LazyReleaseClampsMidRunQueries)
{
    LinkStatsTracker t;
    int l = t.declareLink(0, 0, 0);
    t.onAcquire(l, 10.0, 0.0, 64);
    t.onRelease(l, 20.0); // EarlyRelease: scheduled future free time

    // Mid-hold query clamps to now, not the scheduled end...
    EXPECT_DOUBLE_EQ(t.link(l).busyUs(15.0), 5.0);
    // ...and past the scheduled end it clamps to the end.
    EXPECT_DOUBLE_EQ(t.link(l).busyUs(25.0), 10.0);

    t.finish(30.0);
    EXPECT_DOUBLE_EQ(t.link(l).busyClosedUs, 10.0);
    EXPECT_EQ(t.link(l).packets, 1u);
    EXPECT_EQ(t.link(l).bytes, 64u);
}

TEST(LinkStatsTracker, FinishClosesOpenHolds)
{
    LinkStatsTracker t;
    int l = t.declareLink(0, 0, 0);
    t.onAcquire(l, 10.0, 0.0, 8); // never released (wedged run)
    t.finish(30.0);
    EXPECT_DOUBLE_EQ(t.link(l).busyClosedUs, 20.0);
    EXPECT_DOUBLE_EQ(t.endUs(), 30.0);
}

TEST(LinkStatsTracker, StallsCountOnlyWaitedAcquires)
{
    LinkStatsTracker t;
    int l = t.declareLink(0, 0, 0);
    t.onAcquire(l, 1.0, 0.0, 8);
    t.onRelease(l, 2.0);
    t.onAcquire(l, 5.0, 3.0, 8); // waited 3 us behind the first worm
    t.finish(10.0);
    EXPECT_EQ(t.link(l).stalls, 1u);
    EXPECT_DOUBLE_EQ(t.link(l).stallUs, 3.0);
}

TEST(LinkStatsTracker, QueueDepthIntegralAndPeak)
{
    LinkStatsTracker t;
    int l = t.declareLink(0, 0, 0);
    t.onRequest(l, 0.0);
    t.onRequest(l, 0.0);             // two worms queued from t=0
    t.onAcquire(l, 10.0, 10.0, 8);   // one granted at t=10
    t.finish(20.0);

    // depth 2 over [0,10), depth 1 over [10,20).
    EXPECT_DOUBLE_EQ(t.link(l).depthIntegralUs, 30.0);
    EXPECT_EQ(t.link(l).peakBacklog, 2);
    EXPECT_DOUBLE_EQ(t.link(l).depthTimeUs[2], 10.0);
    EXPECT_DOUBLE_EQ(t.link(l).depthTimeUs[1], 10.0);
}

TEST(LinkStatsTracker, WindowFoldingKeepsBoundedMemory)
{
    LinkStatsTracker t;
    int l = t.declareLink(0, 0, 0);
    // The series starts at 32 us windows (64 of them = 2048 us); a
    // fact at t=10000 forces three doublings to 256 us windows
    // (128 * 64 = 8192 still falls short).
    t.onAcquire(l, 9990.0, 0.0, 8);
    t.onRelease(l, 10000.0);
    t.onOffered(64, 10000.0);
    t.finish(10000.0);

    EXPECT_DOUBLE_EQ(t.windowUs(), 256.0);
    EXPECT_EQ(t.link(l).busyWindowUs.size(),
              static_cast<std::size_t>(LinkStatsTracker::kWindows));
    double busySum = 0.0;
    for (double v : t.link(l).busyWindowUs)
        busySum += v;
    EXPECT_NEAR(busySum, 10.0, 1e-9); // folding loses no mass
    EXPECT_EQ(t.offeredBytes(), 64u);
}

TEST(LinkStatsTracker, ResetForgetsEverything)
{
    LinkStatsTracker t;
    t.declareRouters(4);
    int l = t.declareLink(0, 0, 0);
    t.onAcquire(l, 1.0, 0.0, 8);
    t.onForward(0, 8);
    t.onOffered(8, 5000.0); // also widens the window
    t.reset();

    EXPECT_EQ(t.links(), 0);
    EXPECT_EQ(t.routers(), 0);
    EXPECT_EQ(t.channelLinks(), 0);
    EXPECT_EQ(t.offeredBytes(), 0u);
    EXPECT_DOUBLE_EQ(t.windowUs(), 32.0);
    EXPECT_DOUBLE_EQ(t.endUs(), 0.0);
    // Re-declaration starts a fresh universe with fresh ids.
    EXPECT_EQ(t.declareLink(3, 2, 0), 0);
}

// --------------------------------------------------------------------
// Mesh agreement: one source of truth for channel utilization

/** Drive identical 2x2-mesh traffic with or without the link sink. */
void
runMeshTraffic(bool withSink, double &avgUtil, double &maxUtil,
               LinkStatsTracker *sink)
{
    desim::Simulator sim;
    std::optional<obs::ScopedObservability> scope;
    if (withSink)
        scope.emplace(nullptr, nullptr, nullptr, nullptr, sink);
    trace::TrafficLog log;
    mesh::MeshNetwork net{sim, mesh2x2(), &log};
    for (int src = 0; src < 4; ++src) {
        sim.spawn([](mesh::MeshNetwork &n, int s) -> desim::Task<void> {
            mesh::Packet p;
            p.src = s;
            p.dst = 3 - s; // everyone crosses the mesh
            p.bytes = 64;
            (void)co_await n.transfer(p);
        }(net, src));
    }
    sim.run();
    if (sink)
        sink->finish(sim.now());
    avgUtil = net.averageChannelUtilization(sim.now());
    maxUtil = net.maxChannelUtilization(sim.now());
}

TEST(LinkStatsMesh, DelegatedUtilizationIsBitIdentical)
{
    double avgOff = 0.0, maxOff = 0.0, avgOn = 0.0, maxOn = 0.0;
    LinkStatsTracker sink;
    runMeshTraffic(false, avgOff, maxOff, nullptr);
    runMeshTraffic(true, avgOn, maxOn, &sink);

    // Not NEAR: the sink replicates the mesh's own lane iteration, so
    // the delegated statistics must be the same doubles bit for bit.
    EXPECT_EQ(avgOff, avgOn);
    EXPECT_EQ(maxOff, maxOn);
    EXPECT_GT(avgOn, 0.0);
}

TEST(LinkStatsMesh, TrafficIsAttributedToLinksAndRouters)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    double avg = 0.0, mx = 0.0;
    LinkStatsTracker sink;
    runMeshTraffic(true, avg, mx, &sink);

    // 2x2 mesh: 8 directed channel lanes + 4 injection ports.
    EXPECT_EQ(sink.channelLinks(), 8);
    EXPECT_EQ(sink.links(), 12);
    EXPECT_EQ(sink.routers(), 4);
    EXPECT_EQ(sink.offeredPackets(), 4u);
    EXPECT_EQ(sink.deliveredPackets(), 4u);
    EXPECT_EQ(sink.offeredBytes(), 4u * 64u);
    std::uint64_t forwards = 0;
    for (int r = 0; r < sink.routers(); ++r)
        forwards += sink.router(r).forwards;
    EXPECT_EQ(forwards, 4u * 2u); // every packet hops twice
}

// --------------------------------------------------------------------
// Weather analyzer: known utilization, Gini, hotspots, knee

/** A 2x2 universe where link (node,dir=0,vc=0) is busy [0,busyUs). */
LinkStatsTracker
syntheticLoad(const std::vector<double> &busyPerLink, double runEnd)
{
    LinkStatsTracker t;
    t.declareRouters(4);
    for (std::size_t i = 0; i < busyPerLink.size(); ++i) {
        int l = t.declareLink(static_cast<int>(i), 0, 0);
        if (busyPerLink[i] > 0.0) {
            t.onAcquire(l, 0.0, 0.0, 64);
            t.onRelease(l, busyPerLink[i]);
        }
    }
    t.finish(runEnd);
    return t;
}

TEST(LinkWeatherAnalyzer, KnownLoadUtilizationIsRecovered)
{
    LinkStatsTracker t = syntheticLoad({50.0, 0.0}, 100.0);
    core::LinkWeatherSummary s =
        core::LinkWeatherAnalyzer{}.analyze(t, mesh2x2());

    ASSERT_TRUE(s.enabled);
    EXPECT_DOUBLE_EQ(s.runEndUs, 100.0);
    EXPECT_EQ(s.totalLinks, 2);
    EXPECT_DOUBLE_EQ(s.maxUtilization, 0.5);
    EXPECT_DOUBLE_EQ(s.avgUtilization, 0.25);
    ASSERT_FALSE(s.links.empty());
    EXPECT_DOUBLE_EQ(s.links[0].utilization, 0.5);
    EXPECT_EQ(s.links[0].node, 0);
}

TEST(LinkWeatherAnalyzer, UniformLoadHasZeroGiniAndNoHotspots)
{
    LinkStatsTracker t =
        syntheticLoad({50.0, 50.0, 50.0, 50.0}, 100.0);
    core::LinkWeatherSummary s =
        core::LinkWeatherAnalyzer{}.analyze(t, mesh2x2());

    EXPECT_NEAR(s.gini, 0.0, 1e-9);
    EXPECT_EQ(s.hotspotCount, 0);
}

TEST(LinkWeatherAnalyzer, SingleHotLinkHasHighGiniAndIsFlagged)
{
    LinkStatsTracker t = syntheticLoad({50.0, 0.0, 0.0, 0.0}, 100.0);
    core::LinkWeatherSummary s =
        core::LinkWeatherAnalyzer{}.analyze(t, mesh2x2());

    // {0,0,0,0.5}: Gini = 2*(4*0.5)/(4*0.5) - 5/4 = 0.75.
    EXPECT_NEAR(s.gini, 0.75, 1e-9);
    EXPECT_EQ(s.hotspotCount, 1);
    ASSERT_FALSE(s.links.empty());
    EXPECT_TRUE(s.links[0].hotspot);
    EXPECT_GT(s.links[0].sustainedFraction, 0.0);
    EXPECT_FALSE(s.links[0].sparkline.empty());
    // Sparklines are rendered for hotspots only.
    EXPECT_TRUE(s.links.back().sparkline.empty());
}

TEST(LinkWeatherAnalyzer, TopLinksBoundElidesTheRest)
{
    LinkStatsTracker t =
        syntheticLoad({10.0, 20.0, 30.0, 40.0}, 100.0);
    core::LinkWeatherConfig cfg;
    cfg.topLinks = 2;
    core::LinkWeatherSummary s =
        core::LinkWeatherAnalyzer{cfg}.analyze(t, mesh2x2());

    ASSERT_EQ(s.links.size(), 2u);
    EXPECT_EQ(s.elidedLinks, 2);
    EXPECT_DOUBLE_EQ(s.links[0].utilization, 0.4); // ranked desc
    EXPECT_DOUBLE_EQ(s.links[1].utilization, 0.3);
}

TEST(LinkWeatherAnalyzer, CongestionKneeOnRampedLoad)
{
    LinkStatsTracker t;
    t.declareRouters(4);
    (void)t.declareLink(0, 0, 0);
    // Offered load ramps 100,200,...,1000 bytes across ten 32-us
    // windows; delivery keeps up until window 6, then halves.
    for (int w = 0; w < 10; ++w) {
        double at = w * 32.0 + 1.0;
        int offered = (w + 1) * 100;
        t.onOffered(offered, at);
        t.onDelivered(w < 6 ? offered : offered / 2, at);
    }
    t.finish(320.0);

    core::LinkWeatherSummary s =
        core::LinkWeatherAnalyzer{}.analyze(t, mesh2x2());
    // Baseline efficiency 1.0; window 6 (offered 700) is the first
    // below the 0.75 cutoff.
    EXPECT_NEAR(s.congestionOnsetLoad, 700.0 / 32.0, 1e-9);
    EXPECT_NEAR(s.congestionOnsetUs, 6 * 32.0, 1e-9);
}

TEST(LinkWeatherAnalyzer, NoKneeWhenDeliveryKeepsUp)
{
    LinkStatsTracker t;
    (void)t.declareLink(0, 0, 0);
    for (int w = 0; w < 10; ++w) {
        double at = w * 32.0 + 1.0;
        int offered = (w + 1) * 100;
        t.onOffered(offered, at);
        t.onDelivered(offered, at);
    }
    t.finish(320.0);

    core::LinkWeatherSummary s =
        core::LinkWeatherAnalyzer{}.analyze(t, mesh2x2());
    EXPECT_DOUBLE_EQ(s.congestionOnsetLoad, 0.0);
    EXPECT_LT(s.congestionOnsetUs, 0.0);
}

// --------------------------------------------------------------------
// Report gating and determinism

core::LinkWeatherSummary
smallWeather()
{
    LinkStatsTracker t = syntheticLoad({50.0, 10.0, 0.0, 0.0}, 100.0);
    return core::LinkWeatherAnalyzer{}.analyze(t, mesh2x2());
}

TEST(LinkWeatherReport, DefaultOutputsOmitLinkStats)
{
    core::CharacterizationReport report;
    report.application = "test";

    std::ostringstream text, json, html;
    report.print(text);
    report.writeJson(json);
    core::HtmlReportInputs inputs;
    inputs.report = &report;
    core::writeHtmlReport(html, inputs);

    EXPECT_EQ(text.str().find("Network weather"), std::string::npos);
    EXPECT_EQ(json.str().find("linkStats"), std::string::npos);
    EXPECT_EQ(html.str().find("Network weather"), std::string::npos);
}

TEST(LinkWeatherReport, EnabledSummaryAppearsEverywhere)
{
    core::CharacterizationReport report;
    report.application = "test";
    report.mesh = mesh2x2();
    report.linkStats = smallWeather();
    ASSERT_TRUE(report.linkStats.enabled);

    std::ostringstream text, json, html;
    report.print(text);
    report.writeJson(json);
    core::HtmlReportInputs inputs;
    inputs.report = &report;
    core::writeHtmlReport(html, inputs);

    EXPECT_NE(text.str().find("Network weather"), std::string::npos);
    EXPECT_NE(json.str().find("\"linkStats\""), std::string::npos);
    EXPECT_NE(json.str().find("\"gini\""), std::string::npos);
    EXPECT_NE(html.str().find("Network weather"), std::string::npos);
}

TEST(LinkWeatherReport, HtmlHeatmapRendersDeterministically)
{
    core::CharacterizationReport report;
    report.application = "test";
    report.mesh = mesh2x2();
    report.linkStats = smallWeather();

    core::HtmlReportInputs inputs;
    inputs.report = &report;
    std::ostringstream a, b;
    core::writeHtmlReport(a, inputs);
    core::writeHtmlReport(b, inputs);
    EXPECT_EQ(a.str(), b.str());
}

// --------------------------------------------------------------------
// Fault-provoked end-to-end congestion

sweep::SweepJob
jobFor(const std::string &app, const std::string &plan)
{
    sweep::SweepJob job;
    job.app = app;
    job.procs = 16;
    sweep::meshFactor(16, job.width, job.height);
    job.faultPlan = plan;
    job.linkStats = true;
    return job;
}

TEST(LinkStatsE2E, DisabledJobKeepsColumnsZeroed)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry registry;
    sweep::SweepJob job = jobFor("mg", "");
    job.linkStats = false;
    sweep::JobOutcome out = sweep::SweepEngine::runJob(job, registry);
    ASSERT_TRUE(out.ok()) << out.error;
    EXPECT_DOUBLE_EQ(out.maxLinkUtil, 0.0);
    EXPECT_DOUBLE_EQ(out.linkGini, 0.0);
    EXPECT_EQ(out.hotspotCount, 0u);
    EXPECT_EQ(registry.counterValue("link.hol_stalls"), 0u);
}

TEST(LinkStatsE2E, RouterStallRaisesRankedHotspot)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry healthyReg, faultedReg;
    sweep::JobOutcome healthy =
        sweep::SweepEngine::runJob(jobFor("mg", ""), healthyReg);
    // Unwindowed so the stall covers the time-compressed trace
    // replay, which is the network the outcome describes.
    sweep::JobOutcome faulted = sweep::SweepEngine::runJob(
        jobFor("mg", "router:5:stall=50"), faultedReg);
    ASSERT_TRUE(healthy.ok()) << healthy.error;
    ASSERT_TRUE(faulted.ok()) << faulted.error;

    EXPECT_GT(faulted.maxLinkUtil, 0.0);
    EXPECT_GT(faulted.hotspotCount, 0u);
    // The stall serializes traffic behind one router: the run
    // stretches and the load concentrates on that router's lanes,
    // so the across-link imbalance rises well above the healthy
    // baseline.
    EXPECT_GT(faulted.makespan, healthy.makespan);
    EXPECT_GT(faulted.linkGini, healthy.linkGini);
}

} // namespace
