/**
 * @file
 * Parameterized property sweeps: network invariants across every
 * topology/VC/holding combination, and application correctness across
 * problem sizes and machine shapes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/fft1d.hh"
#include "apps/is.hh"
#include "core/core.hh"
#include "stats/rng.hh"

namespace {

using namespace cchar;

// --------------------------------------------------------------------
// Network sweep: random traffic must drain with sane records on every
// configuration.

struct NetCase
{
    int width;
    int height;
    mesh::Topology topology;
    int vcs;
    mesh::ChannelHolding holding;
};

std::string
netCaseName(const ::testing::TestParamInfo<NetCase> &info)
{
    const auto &c = info.param;
    std::ostringstream os;
    os << (c.topology == mesh::Topology::Torus ? "torus" : "mesh") << c.width
       << "x" << c.height << "_vc" << c.vcs << "_"
       << (c.holding == mesh::ChannelHolding::FullPipeline ? "full"
                                                           : "early");
    return os.str();
}

class NetworkSweep : public ::testing::TestWithParam<NetCase>
{};

TEST_P(NetworkSweep, RandomTrafficDrainsWithSaneRecords)
{
    const NetCase &c = GetParam();
    desim::Simulator sim;
    mesh::MeshConfig cfg;
    cfg.width = c.width;
    cfg.height = c.height;
    cfg.topology = c.topology;
    cfg.virtualChannels = c.vcs;
    cfg.holding = c.holding;
    trace::TrafficLog log;
    mesh::MeshNetwork net{sim, cfg, &log};

    stats::Rng rng{1234};
    int n = cfg.nodes();
    int expected = 0;
    auto sender = [](mesh::MeshNetwork &nw, desim::Simulator &s, int src,
                     int dst, int bytes,
                     double start) -> desim::Task<void> {
        co_await s.delay(start);
        mesh::Packet pkt;
        pkt.src = src;
        pkt.dst = dst;
        pkt.bytes = bytes;
        (void)co_await nw.transfer(std::move(pkt));
    };
    for (int i = 0; i < 600; ++i) {
        int src = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(n)));
        int dst = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(n)));
        if (src == dst)
            continue;
        int bytes = 8 << rng.below(5);
        sim.spawn(sender(net, sim, src, dst, bytes,
                         rng.uniform(0.0, 20.0)));
        ++expected;
    }
    sim.run();
    EXPECT_TRUE(sim.allProcessesDone());
    EXPECT_EQ(log.size(), static_cast<std::size_t>(expected));
    for (const auto &rec : log.records()) {
        EXPECT_GE(rec.contention, 0.0);
        EXPECT_EQ(rec.hops, net.hopCount(rec.src, rec.dst));
        EXPECT_GE(rec.latency(),
                  net.noLoadLatency(rec.hops, rec.bytes) - 1e-9);
    }
    EXPECT_LE(net.maxChannelUtilization(sim.now()), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, NetworkSweep,
    ::testing::Values(
        NetCase{4, 4, mesh::Topology::Mesh, 1,
                mesh::ChannelHolding::FullPipeline},
        NetCase{4, 4, mesh::Topology::Mesh, 1,
                mesh::ChannelHolding::EarlyRelease},
        NetCase{4, 4, mesh::Topology::Mesh, 4,
                mesh::ChannelHolding::FullPipeline},
        NetCase{4, 4, mesh::Topology::Torus, 2,
                mesh::ChannelHolding::FullPipeline},
        NetCase{4, 4, mesh::Topology::Torus, 2,
                mesh::ChannelHolding::EarlyRelease},
        NetCase{4, 4, mesh::Topology::Torus, 4,
                mesh::ChannelHolding::FullPipeline},
        NetCase{8, 2, mesh::Topology::Mesh, 1,
                mesh::ChannelHolding::FullPipeline},
        NetCase{8, 2, mesh::Topology::Torus, 2,
                mesh::ChannelHolding::FullPipeline},
        NetCase{1, 8, mesh::Topology::Mesh, 1,
                mesh::ChannelHolding::FullPipeline},
        NetCase{16, 1, mesh::Topology::Torus, 2,
                mesh::ChannelHolding::FullPipeline}),
    netCaseName);

// --------------------------------------------------------------------
// Application sweep: FFT verifies across sizes and machine shapes.

struct FftCase
{
    std::size_t n;
    int width;
    int height;
};

class FftSweep : public ::testing::TestWithParam<FftCase>
{};

TEST_P(FftSweep, VerifiesAndFitsWell)
{
    const FftCase &c = GetParam();
    apps::Fft1D::Params p;
    p.n = c.n;
    apps::Fft1D app{p};
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = c.width;
    cfg.mesh.height = c.height;
    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, cfg);
    EXPECT_TRUE(report.verified);
    ASSERT_TRUE(report.temporalAggregate.fit.dist);
    EXPECT_GT(report.temporalAggregate.fit.gof.r2, 0.8);
    EXPECT_GT(report.volume.messageCount, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FftSweep,
    ::testing::Values(FftCase{64, 2, 2}, FftCase{128, 2, 2},
                      FftCase{128, 4, 2}, FftCase{256, 4, 2},
                      FftCase{256, 4, 4}, FftCase{512, 4, 4}),
    [](const ::testing::TestParamInfo<FftCase> &info) {
        std::ostringstream os;
        os << "n" << info.param.n << "_p"
           << info.param.width * info.param.height;
        return os.str();
    });

// --------------------------------------------------------------------
// IS sweep: the favorite-processor pattern is size invariant.

class IsSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(IsSweep, BimodalPatternAcrossSizes)
{
    apps::IntegerSort::Params p;
    p.n = GetParam();
    p.buckets = 16;
    apps::IntegerSort app{p};
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    core::CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, cfg);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.spatialAggregate.pattern,
              stats::SpatialPattern::BimodalUniform);
    EXPECT_EQ(report.spatialAggregate.favorite, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IsSweep,
                         ::testing::Values(std::size_t{256},
                                           std::size_t{512},
                                           std::size_t{1024}),
                         [](const auto &info) {
                             return "n" + std::to_string(info.param);
                         });

} // namespace
