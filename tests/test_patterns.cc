/**
 * @file
 * Tests for the structured traffic-pattern detector.
 */

#include <gtest/gtest.h>

#include "core/patterns.hh"
#include "stats/rng.hh"

namespace {

using namespace cchar;
using namespace cchar::core;

/** Build a log where every source sends `count` messages per the
 *  permutation dst = perm(src). */
trace::TrafficLog
permutationLog(const std::vector<int> &perm, int count)
{
    trace::TrafficLog log{static_cast<int>(perm.size())};
    for (std::size_t src = 0; src < perm.size(); ++src) {
        for (int i = 0; i < count; ++i) {
            trace::MessageRecord rec;
            rec.src = static_cast<int>(src);
            rec.dst = perm[src];
            rec.bytes = 32;
            rec.injectTime = static_cast<double>(i);
            rec.deliverTime = rec.injectTime + 0.5;
            log.add(rec);
        }
    }
    return log;
}

TEST(Patterns, DetectsRingShift)
{
    std::vector<int> perm(8);
    for (int s = 0; s < 8; ++s)
        perm[static_cast<std::size_t>(s)] = (s + 3) % 8;
    auto match = StructuredPatternDetector{}.analyze(
        permutationLog(perm, 10));
    EXPECT_EQ(match.pattern, StructuredPattern::RingShift);
    EXPECT_EQ(match.parameter, 3);
    EXPECT_NEAR(match.coverage, 1.0, 1e-12);
}

TEST(Patterns, DetectsButterflyMask)
{
    std::vector<int> perm(16);
    for (int s = 0; s < 16; ++s)
        perm[static_cast<std::size_t>(s)] = s ^ 5;
    auto match = StructuredPatternDetector{}.analyze(
        permutationLog(perm, 4));
    EXPECT_EQ(match.pattern, StructuredPattern::Butterfly);
    EXPECT_EQ(match.parameter, 5);
}

TEST(Patterns, DetectsBitReverse)
{
    // 8 nodes: bit-reverse permutation 0,4,2,6,1,5,3,7.
    std::vector<int> perm{0, 4, 2, 6, 1, 5, 3, 7};
    auto match = StructuredPatternDetector{}.analyze(
        permutationLog(perm, 6));
    // Self-sends (0->0, 2->2, ...) are excluded from logs; the
    // detector must still credit the moving pairs. Note bit-reverse
    // on 8 nodes coincides with xor patterns only partially.
    EXPECT_TRUE(match.pattern == StructuredPattern::BitReverse ||
                match.coverage >= 0.5);
}

TEST(Patterns, DetectsTransposeOnSquareGrid)
{
    // 16 nodes as a 4x4 grid: dst = transpose(src).
    std::vector<int> perm(16);
    for (int s = 0; s < 16; ++s) {
        int x = s % 4, y = s / 4;
        perm[static_cast<std::size_t>(s)] = x * 4 + y;
    }
    auto match = StructuredPatternDetector{}.analyze(
        permutationLog(perm, 3));
    EXPECT_EQ(match.pattern, StructuredPattern::Transpose);
}

TEST(Patterns, DetectsHotSpot)
{
    trace::TrafficLog log{8};
    stats::Rng rng{4};
    for (int i = 0; i < 800; ++i) {
        trace::MessageRecord rec;
        rec.src = 1 + static_cast<int>(rng.below(7));
        // 80% of traffic to node 0.
        rec.dst = rng.chance(0.8)
                      ? 0
                      : 1 + static_cast<int>(rng.below(7));
        if (rec.dst == rec.src)
            rec.dst = 0;
        rec.bytes = 8;
        rec.injectTime = i * 0.1;
        rec.deliverTime = rec.injectTime + 0.2;
        log.add(rec);
    }
    auto match = StructuredPatternDetector{}.analyze(log);
    EXPECT_EQ(match.pattern, StructuredPattern::HotSpot);
    EXPECT_EQ(match.parameter, 0);
    EXPECT_GT(match.coverage, 0.7);
}

TEST(Patterns, RandomTrafficIsNone)
{
    trace::TrafficLog log{16};
    stats::Rng rng{9};
    for (int i = 0; i < 4000; ++i) {
        trace::MessageRecord rec;
        rec.src = static_cast<int>(rng.below(16));
        rec.dst = static_cast<int>(rng.below(16));
        if (rec.dst == rec.src)
            rec.dst = (rec.dst + 1) % 16;
        rec.bytes = 8;
        rec.injectTime = i * 0.01;
        rec.deliverTime = rec.injectTime + 0.2;
        log.add(rec);
    }
    auto match = StructuredPatternDetector{}.analyze(log);
    EXPECT_EQ(match.pattern, StructuredPattern::None);
    EXPECT_LT(match.coverage, 0.5);
    EXPECT_FALSE(match.alternatives.empty());
}

TEST(Patterns, EmptyLogIsNone)
{
    trace::TrafficLog log{8};
    auto match = StructuredPatternDetector{}.analyze(log);
    EXPECT_EQ(match.pattern, StructuredPattern::None);
    EXPECT_DOUBLE_EQ(match.coverage, 0.0);
}

TEST(Patterns, TrafficMatrixCounts)
{
    trace::TrafficLog log{3};
    trace::MessageRecord rec;
    rec.src = 0;
    rec.dst = 2;
    rec.bytes = 8;
    log.add(rec);
    log.add(rec);
    rec.src = 1;
    log.add(rec);
    auto m = trafficMatrix(log);
    EXPECT_DOUBLE_EQ(m[0][2], 2.0);
    EXPECT_DOUBLE_EQ(m[1][2], 1.0);
    EXPECT_DOUBLE_EQ(m[0][1], 0.0);
}

TEST(Patterns, CoverageThresholdRespected)
{
    std::vector<int> perm(8);
    for (int s = 0; s < 8; ++s)
        perm[static_cast<std::size_t>(s)] = (s + 1) % 8;
    StructuredPatternDetector::Options opts;
    opts.minCoverage = 1.1; // impossible
    auto match = StructuredPatternDetector{opts}.analyze(
        permutationLog(perm, 5));
    EXPECT_EQ(match.pattern, StructuredPattern::None);
    EXPECT_GT(match.coverage, 0.9); // best coverage still reported
}

TEST(Patterns, DescribeIsReadable)
{
    std::vector<int> perm(8);
    for (int s = 0; s < 8; ++s)
        perm[static_cast<std::size_t>(s)] = (s + 2) % 8;
    auto match = StructuredPatternDetector{}.analyze(
        permutationLog(perm, 5));
    auto text = match.describe();
    EXPECT_NE(text.find("ring-shift"), std::string::npos);
    EXPECT_NE(text.find("k=2"), std::string::npos);
}

} // namespace
