/**
 * @file
 * Unit tests for the message-passing runtime: point-to-point matching,
 * the SP2 overhead model, collectives, and trace collection.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mp/mp.hh"

namespace {

using namespace cchar;
using namespace cchar::mp;
using desim::Simulator;
using desim::Task;

MpConfig
smallWorld(int width = 4, int height = 2)
{
    MpConfig cfg;
    cfg.mesh.width = width;
    cfg.mesh.height = height;
    return cfg;
}

TEST(MpPt2Pt, SendRecvDeliversBytes)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    int got = 0;
    world.spawnRank(0, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 0};
        co_await ctx.send(1, 256);
    }(world));
    world.spawnRank(1, [](MpWorld &w, int &out) -> Task<void> {
        MpContext ctx{w, 1};
        out = co_await ctx.recv(0);
    }(world, got));
    world.run();
    EXPECT_EQ(got, 256);
    EXPECT_EQ(world.log().size(), 1u);
    EXPECT_EQ(world.log().records()[0].bytes, 256);
}

TEST(MpPt2Pt, Sp2OverheadModelApplied)
{
    // End-to-end completion time of one message must include the full
    // software overhead 73.42 + 0.0463 x plus network time.
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    double done = 0.0;
    const int bytes = 1000;
    world.spawnRank(0, [](MpWorld &w, int n) -> Task<void> {
        MpContext ctx{w, 0};
        co_await ctx.send(1, n);
    }(world, bytes));
    world.spawnRank(1, [](MpWorld &w, double &t) -> Task<void> {
        MpContext ctx{w, 1};
        (void)co_await ctx.recv(0);
        t = w.sim().now();
    }(world, done));
    world.run();
    double overhead = 73.42 + 0.0463 * bytes;
    EXPECT_GE(done, overhead);
    // Network adds little on an unloaded mesh: total < overhead + 5us.
    EXPECT_LT(done, overhead + 5.0);
}

TEST(MpPt2Pt, TagsMatchIndependently)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    std::vector<int> got;
    world.spawnRank(0, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 0};
        co_await ctx.send(1, 100, 7);
        co_await ctx.send(1, 200, 9);
    }(world));
    world.spawnRank(1, [](MpWorld &w, std::vector<int> &out) -> Task<void> {
        MpContext ctx{w, 1};
        // Receive in the opposite tag order.
        out.push_back(co_await ctx.recv(0, 9));
        out.push_back(co_await ctx.recv(0, 7));
    }(world, got));
    world.run();
    EXPECT_EQ(got, (std::vector<int>{200, 100}));
}

TEST(MpPt2Pt, SameTagIsFifo)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    std::vector<int> got;
    world.spawnRank(0, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 0};
        for (int i = 1; i <= 3; ++i)
            co_await ctx.send(1, i * 10);
    }(world));
    world.spawnRank(1, [](MpWorld &w, std::vector<int> &out) -> Task<void> {
        MpContext ctx{w, 1};
        for (int i = 0; i < 3; ++i)
            out.push_back(co_await ctx.recv(0));
    }(world, got));
    world.run();
    EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(MpPt2Pt, SelfSendRejected)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    world.spawnRank(0, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 0};
        co_await ctx.send(0, 8);
    }(world));
    EXPECT_THROW(world.run(), std::invalid_argument);
}

TEST(MpPt2Pt, UnmatchedRecvIsDeadlock)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    world.spawnRank(0, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 0};
        (void)co_await ctx.recv(1);
    }(world));
    EXPECT_THROW(world.run(), std::runtime_error);
}

TEST(MpCollective, BarrierHoldsEveryoneBack)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    std::vector<double> times(8, -1.0);
    for (int r = 0; r < 8; ++r) {
        world.spawnRank(r, [](MpWorld &w, int rank,
                              std::vector<double> &ts) -> Task<void> {
            MpContext ctx{w, rank};
            co_await ctx.compute(100.0 * rank);
            co_await ctx.barrier();
            ts[static_cast<std::size_t>(rank)] = w.sim().now();
        }(world, r, times));
    }
    world.run();
    for (double t : times)
        EXPECT_GE(t, 700.0);
}

TEST(MpCollective, BcastRootIsFavoriteByMessageCount)
{
    // The paper's Figure-9 phenomenon: with root-0 broadcasts, every
    // rank's most frequent destination is p0 (completion acks), while
    // byte volume to p0 stays small.
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    for (int r = 0; r < 8; ++r) {
        world.spawnRank(r, [](MpWorld &w, int rank) -> Task<void> {
            MpContext ctx{w, rank};
            for (int round = 0; round < 10; ++round)
                co_await ctx.bcast(0, 4096);
        }(world, r));
    }
    world.run();
    for (int r = 1; r < 8; ++r) {
        auto counts = world.log().destinationCounts(r);
        auto maxIt = std::max_element(counts.begin(), counts.end());
        EXPECT_EQ(maxIt - counts.begin(), 0) << "rank " << r;
    }
    // Root's own sends spread uniformly over the other ranks.
    auto rootCounts = world.log().destinationCounts(0);
    for (int r = 2; r < 8; ++r)
        EXPECT_DOUBLE_EQ(rootCounts[static_cast<std::size_t>(r)],
                         rootCounts[1]);
}

TEST(MpCollective, ReduceConvergesToRoot)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    for (int r = 0; r < 8; ++r) {
        world.spawnRank(r, [](MpWorld &w, int rank) -> Task<void> {
            MpContext ctx{w, rank};
            co_await ctx.reduce(2, 512);
        }(world, r));
    }
    world.run();
    // Binomial tree on 8 ranks: 7 messages total.
    EXPECT_EQ(world.log().size(), 7u);
    // The root receives from its direct children only.
    auto toRoot = 0.0;
    for (const auto &rec : world.log().records()) {
        EXPECT_EQ(rec.bytes, 512);
        if (rec.dst == 2)
            toRoot += 1.0;
    }
    EXPECT_DOUBLE_EQ(toRoot, 3.0); // log2(8) children
}

TEST(MpCollective, AlltoallIsFullExchange)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    for (int r = 0; r < 8; ++r) {
        world.spawnRank(r, [](MpWorld &w, int rank) -> Task<void> {
            MpContext ctx{w, rank};
            co_await ctx.alltoall(128);
        }(world, r));
    }
    world.run();
    EXPECT_EQ(world.log().size(), 56u); // 8 * 7
    for (int src = 0; src < 8; ++src) {
        auto counts = world.log().destinationCounts(src);
        for (int dst = 0; dst < 8; ++dst) {
            EXPECT_DOUBLE_EQ(counts[static_cast<std::size_t>(dst)],
                             dst == src ? 0.0 : 1.0);
        }
    }
}

TEST(MpCollective, AllreduceReachesEveryone)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    int done = 0;
    for (int r = 0; r < 8; ++r) {
        world.spawnRank(r, [](MpWorld &w, int rank, int &d) -> Task<void> {
            MpContext ctx{w, rank};
            co_await ctx.allreduce(64);
            ++d;
        }(world, r, done));
    }
    world.run();
    EXPECT_EQ(done, 8);
}

TEST(MpTrace, CollectsSinceLastDeltas)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    world.enableTracing();
    world.spawnRank(0, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 0};
        co_await ctx.compute(50.0);
        co_await ctx.send(1, 100);
        co_await ctx.compute(25.0);
        co_await ctx.send(2, 200);
    }(world));
    world.spawnRank(1, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 1};
        (void)co_await ctx.recv(0);
    }(world));
    world.spawnRank(2, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 2};
        (void)co_await ctx.recv(0);
    }(world));
    world.run();
    const auto &tr = world.collectedTrace();
    ASSERT_EQ(tr.size(), 2u);
    EXPECT_EQ(tr.events()[0].src, 0);
    EXPECT_EQ(tr.events()[0].dst, 1);
    EXPECT_EQ(tr.events()[0].bytes, 100);
    EXPECT_DOUBLE_EQ(tr.events()[0].sinceLast, 50.0);
    EXPECT_EQ(tr.events()[1].dst, 2);
    EXPECT_DOUBLE_EQ(tr.events()[1].sinceLast, 25.0);
}

TEST(MpTrace, DisabledByDefault)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    world.spawnRank(0, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 0};
        co_await ctx.send(1, 8);
    }(world));
    world.spawnRank(1, [](MpWorld &w) -> Task<void> {
        MpContext ctx{w, 1};
        (void)co_await ctx.recv(0);
    }(world));
    world.run();
    EXPECT_EQ(world.collectedTrace().size(), 0u);
}

TEST(MpProperty, DeterministicAcrossRuns)
{
    auto runOnce = [] {
        Simulator sim;
        MpWorld world{sim, smallWorld()};
        for (int r = 0; r < 8; ++r) {
            world.spawnRank(r, [](MpWorld &w, int rank) -> Task<void> {
                MpContext ctx{w, rank};
                for (int i = 0; i < 5; ++i) {
                    co_await ctx.alltoall(64 + 8 * rank);
                    co_await ctx.barrier();
                }
            }(world, r));
        }
        world.run();
        std::vector<double> sig;
        for (const auto &rec : world.log().records()) {
            sig.push_back(rec.injectTime);
            sig.push_back(rec.src * 10.0 + rec.dst);
        }
        return sig;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace

// --------------------------------------------------------------------
// gather / scatter / allgather (extension tests)

namespace {

TEST(MpCollective, GatherConvergesLinearly)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    for (int r = 0; r < 8; ++r) {
        world.spawnRank(r, [](MpWorld &w, int rank) -> Task<void> {
            MpContext ctx{w, rank};
            co_await ctx.gather(3, 256);
        }(world, r));
    }
    world.run();
    EXPECT_EQ(world.log().size(), 7u);
    for (const auto &rec : world.log().records())
        EXPECT_EQ(rec.dst, 3);
}

TEST(MpCollective, ScatterFansOut)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    for (int r = 0; r < 8; ++r) {
        world.spawnRank(r, [](MpWorld &w, int rank) -> Task<void> {
            MpContext ctx{w, rank};
            co_await ctx.scatter(2, 128);
        }(world, r));
    }
    world.run();
    EXPECT_EQ(world.log().size(), 7u);
    for (const auto &rec : world.log().records())
        EXPECT_EQ(rec.src, 2);
}

TEST(MpCollective, AllgatherRingCompletes)
{
    Simulator sim;
    MpWorld world{sim, smallWorld()};
    int done = 0;
    for (int r = 0; r < 8; ++r) {
        world.spawnRank(r, [](MpWorld &w, int rank, int &d) -> Task<void> {
            MpContext ctx{w, rank};
            co_await ctx.allgather(64);
            ++d;
        }(world, r, done));
    }
    world.run();
    EXPECT_EQ(done, 8);
    // Ring: P * (P-1) messages, all to rank+1.
    EXPECT_EQ(world.log().size(), 56u);
    for (const auto &rec : world.log().records())
        EXPECT_EQ(rec.dst, (rec.src + 1) % 8);
}

} // namespace
