/**
 * @file
 * Chaos harness tests: generator determinism and round-trip, outcome
 * classification, campaign worker-count invariance, and plan shrinking
 * (see src/sweep/chaos.hh and DESIGN §6g).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "fault/plan.hh"
#include "sweep/chaos.hh"

namespace {

using namespace cchar;
using sweep::ChaosHarness;
using sweep::ChaosOptions;
using sweep::ChaosPlan;
using sweep::ChaosResult;

/** Small fast campaign: one mp app, a handful of 2x2 plans. */
ChaosOptions
smallCampaign()
{
    ChaosOptions opts;
    opts.seed = 7;
    opts.plans = 6;
    opts.apps = {"3d-fft"};
    opts.procs = 4;
    opts.maxFaults = 3;
    return opts;
}

TEST(ChaosGenerator, SameSeedSamePlans)
{
    ChaosOptions opts = smallCampaign();
    auto a = ChaosHarness{opts}.generatePlans();
    auto b = ChaosHarness{opts}.generatePlans();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].render(), b[i].render());
}

TEST(ChaosGenerator, DifferentSeedsDiffer)
{
    ChaosOptions opts = smallCampaign();
    auto a = ChaosHarness{opts}.generatePlans();
    opts.seed = 8;
    auto b = ChaosHarness{opts}.generatePlans();
    bool anyDiffer = a.size() != b.size();
    for (std::size_t i = 0; !anyDiffer && i < a.size(); ++i)
        anyDiffer = a[i].render() != b[i].render();
    EXPECT_TRUE(anyDiffer);
}

TEST(ChaosGenerator, RenderedPlansRoundTripThroughGrammar)
{
    auto plans = ChaosHarness{smallCampaign()}.generatePlans();
    ASSERT_FALSE(plans.empty());
    for (const ChaosPlan &p : plans) {
        fault::FaultPlan parsed = fault::FaultPlan::parse(p.render());
        EXPECT_EQ(parsed.seed(), p.planSeed);
        EXPECT_EQ(parsed.retry().window, p.retry.window);
        EXPECT_EQ(parsed.retry().maxAttempts, p.retry.maxAttempts);
        ASSERT_EQ(parsed.faults().size(), p.faults.size());
        // describe() must be stable under one parse round trip, or
        // shrunk plans would not replay verbatim.
        for (std::size_t i = 0; i < p.faults.size(); ++i)
            EXPECT_EQ(parsed.faults()[i].describe(),
                      p.faults[i].describe());
    }
}

TEST(ChaosClassify, MapsStatusAndFailures)
{
    using sweep::classifyChaosOutcome;
    EXPECT_EQ(classifyChaosOutcome("ok", 0), "recovered");
    EXPECT_EQ(classifyChaosOutcome("ok", 3), "delivery-failure");
    EXPECT_EQ(classifyChaosOutcome("watchdog-trip", 0), "watchdog");
    EXPECT_EQ(classifyChaosOutcome("deadline-exceeded", 0), "deadline");
    EXPECT_EQ(classifyChaosOutcome("sim-error", 1), "deadlock");
    EXPECT_EQ(classifyChaosOutcome("usage-error", 0), "usage-error");
}

TEST(ChaosCampaign, ByteIdenticalAcrossWorkerCounts)
{
    ChaosOptions opts = smallCampaign();
    ChaosResult serial = ChaosHarness{opts}.run(1);
    ChaosResult parallel = ChaosHarness{opts}.run(4);
    std::ostringstream a, b;
    serial.writeJson(a);
    parallel.writeJson(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(ChaosCampaign, ShrinksFailingPlans)
{
    ChaosOptions opts = smallCampaign();
    ChaosResult result = ChaosHarness{opts}.run(2);
    ASSERT_GE(result.failingCount(), 1u)
        << "seed 7 must seed at least one failing plan";
    for (const auto &j : result.jobs) {
        if (!j.failing())
            continue;
        EXPECT_FALSE(j.shrunkPlan.empty());
        EXPECT_GE(j.shrunkFaults, 1u);
        EXPECT_LE(j.shrunkFaults, 2u)
            << "greedy removal should reach <= 2 clauses for " << j.plan;
        // The shrunk plan still parses (replayable with --fault-plan).
        EXPECT_NO_THROW(fault::FaultPlan::parse(j.shrunkPlan));
        // Shrinking never grows the plan.
        EXPECT_LE(j.shrunkFaults,
                  fault::FaultPlan::parse(j.plan).faults().size());
    }
    // Recovered jobs carry no shrink output.
    for (const auto &j : result.jobs) {
        if (!j.failing())
            EXPECT_TRUE(j.shrunkPlan.empty());
    }
}

} // namespace
