/**
 * @file
 * Application tests: every workload must run to completion on the
 * simulated machine, produce a correct (self-verified) result, and
 * generate traffic with the phase/pattern structure the paper
 * describes for it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "apps/cholesky.hh"
#include "apps/fft1d.hh"
#include "apps/fft3d.hh"
#include "apps/fft_util.hh"
#include "apps/is.hh"
#include "apps/maxflow.hh"
#include "apps/mg.hh"
#include "apps/nbody.hh"
#include "apps/sor.hh"

namespace {

using namespace cchar;
using namespace cchar::apps;

ccnuma::MachineConfig
machine4x4()
{
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    return cfg;
}

mp::MpConfig
world8()
{
    mp::MpConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 2;
    return cfg;
}

// --------------------------------------------------------------------
// FFT utilities

TEST(FftUtil, MatchesNaiveDft)
{
    std::vector<Complex> xs;
    for (int i = 0; i < 16; ++i)
        xs.push_back(Complex{std::sin(0.3 * i), std::cos(0.7 * i)});
    auto want = naiveDft(xs);
    auto got = xs;
    fftInPlace(got);
    EXPECT_LT(maxError(got, want), 1e-9);
}

TEST(FftUtil, RoundTripIdentity)
{
    std::vector<Complex> xs;
    for (int i = 0; i < 64; ++i)
        xs.push_back(Complex{1.0 * i, -0.5 * i});
    auto orig = xs;
    fftInPlace(xs, false);
    fftInPlace(xs, true);
    for (auto &v : xs)
        v /= 64.0;
    EXPECT_LT(maxError(xs, orig), 1e-9);
}

TEST(FftUtil, RejectsNonPowerOfTwo)
{
    std::vector<Complex> xs(12);
    EXPECT_THROW(fftInPlace(xs), std::invalid_argument);
}

// --------------------------------------------------------------------
// Shared-memory applications

TEST(AppFft1D, RunsAndVerifies)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    Fft1D::Params p;
    p.n = 128;
    Fft1D app{p};
    launch(m, app);
    m.run();
    EXPECT_TRUE(app.verify());
    EXPECT_GT(m.log().size(), 100u);
}

TEST(AppFft1D, EarlyStagesAreLocal)
{
    // The first log2(n/P) stages only touch the processor's own
    // block: traffic (beyond barriers) concentrates in the later
    // stages — visible as sync-only messages early on.
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    Fft1D::Params p;
    p.n = 128; // block = 8, stages 1..3 local
    Fft1D app{p};
    launch(m, app);
    m.run();
    // Data messages must exist (remote phases) and sync messages too.
    EXPECT_GT(m.log().filterKind(trace::MessageKind::Data).size(), 0u);
    EXPECT_GT(m.log().filterKind(trace::MessageKind::Sync).size(), 0u);
}

TEST(AppIntegerSort, RunsAndVerifies)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    IntegerSort::Params p;
    p.n = 512;
    p.buckets = 16;
    IntegerSort app{p};
    launch(m, app);
    m.run();
    EXPECT_TRUE(app.verify());
}

TEST(AppIntegerSort, Processor0IsTheFavoriteDestination)
{
    // The paper: "one processor gets the maximum number of messages
    // and the rest of them get equal number of messages."
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    IntegerSort::Params p;
    p.n = 512;
    p.buckets = 16;
    IntegerSort app{p};
    launch(m, app);
    m.run();
    for (int src = 1; src < 16; ++src) {
        auto counts = m.log().destinationCounts(src);
        auto maxIt = std::max_element(counts.begin(), counts.end());
        EXPECT_EQ(static_cast<int>(maxIt - counts.begin()), 0)
            << "source " << src;
    }
}

TEST(AppCholesky, RunsAndVerifies)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    SparseCholesky::Params p;
    p.n = 24;
    SparseCholesky app{p};
    launch(m, app);
    m.run();
    EXPECT_TRUE(app.verify());
    EXPECT_GT(m.log().size(), 100u);
}

TEST(AppCholesky, DifferentSeedsDifferentTraffic)
{
    // Data-dependent pattern: the sparsity structure (seed) must
    // change the generated traffic.
    auto countFor = [](std::uint64_t seed) {
        desim::Simulator sim;
        ccnuma::Machine m{sim, machine4x4()};
        SparseCholesky::Params p;
        p.n = 24;
        p.seed = seed;
        SparseCholesky app{p};
        launch(m, app);
        m.run();
        EXPECT_TRUE(app.verify());
        return m.log().size();
    };
    EXPECT_NE(countFor(1), countFor(99));
}

TEST(AppMaxflow, RunsAndMatchesEdmondsKarp)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    Maxflow::Params p;
    p.n = 20;
    Maxflow app{p};
    launch(m, app);
    m.run();
    EXPECT_TRUE(app.verify());
    EXPECT_GT(app.referenceFlow(), 0.0);
}

TEST(AppMaxflow, MultipleSeeds)
{
    for (std::uint64_t seed : {5ull, 23ull, 77ull}) {
        desim::Simulator sim;
        ccnuma::Machine m{sim, machine4x4()};
        Maxflow::Params p;
        p.n = 16;
        p.seed = seed;
        Maxflow app{p};
        launch(m, app);
        m.run();
        EXPECT_TRUE(app.verify()) << "seed " << seed;
    }
}

TEST(AppNbody, MatchesSequentialReferenceExactly)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    Nbody::Params p;
    p.n = 32;
    p.steps = 2;
    Nbody app{p};
    launch(m, app);
    m.run();
    EXPECT_TRUE(app.verify());
}

TEST(AppNbody, ForcePhaseReadsDominateTraffic)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    Nbody::Params p;
    p.n = 32;
    p.steps = 1;
    Nbody app{p};
    launch(m, app);
    m.run();
    // Reads of other blocks: data messages far outnumber sync.
    auto data = m.log().filterKind(trace::MessageKind::Data).size();
    auto sync = m.log().filterKind(trace::MessageKind::Sync).size();
    EXPECT_GT(data, sync);
}

// --------------------------------------------------------------------
// Message-passing applications

TEST(AppFft3D, RunsAndVerifies)
{
    desim::Simulator sim;
    mp::MpWorld world{sim, world8()};
    Fft3D::Params p;
    p.nx = p.ny = p.nz = 8;
    p.iterations = 1;
    Fft3D app{p};
    launch(world, app);
    world.run();
    EXPECT_TRUE(app.verify());
    EXPECT_GT(world.log().size(), 50u);
}

TEST(AppFft3D, BroadcastRootFavoriteButVolumeUniform)
{
    // The paper's Figure 9 shape: message count favors p0, byte
    // volume stays roughly uniform (dominated by the all-to-all).
    desim::Simulator sim;
    mp::MpWorld world{sim, world8()};
    Fft3D::Params p;
    p.nx = p.ny = p.nz = 8;
    p.iterations = 3;
    Fft3D app{p};
    launch(world, app);
    world.run();
    int favoriteHits = 0;
    for (int src = 1; src < 8; ++src) {
        auto counts = world.log().destinationCounts(src);
        auto maxIt = std::max_element(counts.begin(), counts.end());
        if (maxIt - counts.begin() == 0)
            ++favoriteHits;
        // Byte volume: p0's share must not dominate similarly.
        auto bytes = world.log().destinationBytes(src);
        double total = 0.0;
        for (double b : bytes)
            total += b;
        EXPECT_LT(bytes[0], 0.4 * total) << "source " << src;
    }
    EXPECT_GE(favoriteHits, 5);
}

TEST(AppMultigrid, ResidualDropsAcrossVCycles)
{
    desim::Simulator sim;
    mp::MpWorld world{sim, world8()};
    Multigrid::Params p;
    p.n = 16;
    p.levels = 3;
    p.vCycles = 2;
    Multigrid app{p};
    launch(world, app);
    world.run();
    EXPECT_TRUE(app.verify());
    const auto &hist = app.residualHistory();
    ASSERT_EQ(hist.size(), 3u);
    EXPECT_LT(hist[2], hist[1]);
    EXPECT_LT(hist[1], hist[0]);
}

TEST(AppMultigrid, NeighbourTrafficDominatesPt2Pt)
{
    // Ghost exchanges between rank-space neighbours: most data
    // messages travel to rank +-1.
    desim::Simulator sim;
    mp::MpWorld world{sim, world8()};
    Multigrid::Params p;
    p.n = 16;
    p.levels = 3;
    p.vCycles = 1;
    Multigrid app{p};
    launch(world, app);
    world.run();
    auto data = world.log().filterKind(trace::MessageKind::Data);
    std::size_t neighbour = 0;
    for (const auto &r : data.records()) {
        if (std::abs(r.src - r.dst) == 1)
            ++neighbour;
    }
    EXPECT_GT(neighbour, data.size() / 2);
}

} // namespace

// --------------------------------------------------------------------
// SOR (extension workload)

namespace {

TEST(AppSor, MatchesSequentialReferenceExactly)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    RedBlackSor::Params p;
    p.n = 32;
    p.iterations = 2;
    RedBlackSor app{p};
    launch(m, app);
    m.run();
    EXPECT_TRUE(app.verify());
    EXPECT_GT(m.log().size(), 50u);
}

TEST(AppSor, TrafficIsNearestNeighbourDominated)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    RedBlackSor::Params p;
    p.n = 32;
    p.iterations = 2;
    RedBlackSor app{p};
    launch(m, app);
    m.run();
    // Row-block partitioning on the 4x4 mesh: block i talks to
    // blocks i±1, which are (mostly) adjacent nodes. Most data
    // traffic stays within 1 hop.
    auto data = m.log().filterKind(trace::MessageKind::Data);
    std::size_t oneHop = 0;
    for (const auto &r : data.records()) {
        int sx = r.src % 4, sy = r.src / 4;
        int dx = r.dst % 4, dy = r.dst / 4;
        if (std::abs(sx - dx) + std::abs(sy - dy) == 1)
            ++oneHop;
    }
    EXPECT_GT(oneHop, data.size() / 2);
}

TEST(AppSor, RejectsBadGeometry)
{
    desim::Simulator sim;
    ccnuma::Machine m{sim, machine4x4()};
    RedBlackSor::Params p;
    p.n = 30; // not a multiple of 16
    RedBlackSor app{p};
    EXPECT_THROW(app.setup(m), std::invalid_argument);
}

} // namespace
