/**
 * @file
 * Unit tests for traffic logs and application traces.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/status.hh"
#include "trace/record.hh"
#include "trace/trace.hh"

namespace {

using namespace cchar::trace;

MessageRecord
rec(int src, int dst, int bytes, double inject, double deliver,
    MessageKind kind = MessageKind::Data)
{
    MessageRecord r;
    r.src = src;
    r.dst = dst;
    r.bytes = bytes;
    r.injectTime = inject;
    r.deliverTime = deliver;
    r.kind = kind;
    return r;
}

TEST(TrafficLog, InterArrivalAggregate)
{
    TrafficLog log{4};
    log.add(rec(0, 1, 8, 10.0, 11.0));
    log.add(rec(1, 2, 8, 14.0, 15.0));
    log.add(rec(0, 3, 8, 20.0, 21.0));
    auto gaps = log.interArrivalTimes();
    ASSERT_EQ(gaps.size(), 2u);
    EXPECT_DOUBLE_EQ(gaps[0], 4.0);
    EXPECT_DOUBLE_EQ(gaps[1], 6.0);
}

TEST(TrafficLog, InterArrivalPerSource)
{
    TrafficLog log{4};
    log.add(rec(0, 1, 8, 10.0, 11.0));
    log.add(rec(1, 2, 8, 14.0, 15.0));
    log.add(rec(0, 3, 8, 25.0, 26.0));
    auto gaps = log.interArrivalTimes(0);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_DOUBLE_EQ(gaps[0], 15.0);
    EXPECT_TRUE(log.interArrivalTimes(1).empty());
    EXPECT_TRUE(log.interArrivalTimes(3).empty());
}

TEST(TrafficLog, InterArrivalHandlesUnsortedInsertions)
{
    TrafficLog log{2};
    log.add(rec(0, 1, 8, 30.0, 31.0));
    log.add(rec(0, 1, 8, 10.0, 11.0));
    auto gaps = log.interArrivalTimes();
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_DOUBLE_EQ(gaps[0], 20.0);
}

TEST(TrafficLog, DestinationCountsAndBytes)
{
    TrafficLog log{3};
    log.add(rec(0, 1, 8, 0.0, 1.0));
    log.add(rec(0, 1, 16, 1.0, 2.0));
    log.add(rec(0, 2, 40, 2.0, 3.0));
    log.add(rec(1, 0, 8, 3.0, 4.0));
    auto counts = log.destinationCounts(0);
    EXPECT_EQ(counts, (std::vector<double>{0.0, 2.0, 1.0}));
    auto bytes = log.destinationBytes(0);
    EXPECT_EQ(bytes, (std::vector<double>{0.0, 24.0, 40.0}));
    auto srcs = log.sourceCounts();
    EXPECT_EQ(srcs, (std::vector<double>{3.0, 1.0, 0.0}));
}

TEST(TrafficLog, FilterKindSelectsSubset)
{
    TrafficLog log{2};
    log.add(rec(0, 1, 8, 0.0, 1.0, MessageKind::Control));
    log.add(rec(0, 1, 40, 1.0, 2.0, MessageKind::Data));
    log.add(rec(1, 0, 8, 2.0, 3.0, MessageKind::Sync));
    auto ctl = log.filterKind(MessageKind::Control);
    EXPECT_EQ(ctl.size(), 1u);
    EXPECT_EQ(ctl.records()[0].bytes, 8);
    EXPECT_EQ(log.filterKind(MessageKind::Data).size(), 1u);
}

TEST(TrafficLog, LatencyAndMakespan)
{
    TrafficLog log{2};
    log.add(rec(0, 1, 8, 1.0, 3.5));
    log.add(rec(1, 0, 8, 2.0, 7.0));
    auto ls = log.latencies();
    EXPECT_DOUBLE_EQ(ls[0], 2.5);
    EXPECT_DOUBLE_EQ(ls[1], 5.0);
    EXPECT_DOUBLE_EQ(log.lastDeliverTime(), 7.0);
}

// --------------------------------------------------------------------
// Trace serialization

TEST(Trace, SaveLoadRoundTrip)
{
    Trace t{8};
    t.add({0, 1, 128, MessageKind::Data, 12.5});
    t.add({1, 0, 8, MessageKind::Control, 0.0});
    t.add({2, 7, 4096, MessageKind::Data, 99.25});
    std::stringstream ss;
    t.save(ss);
    Trace u = Trace::load(ss);
    ASSERT_EQ(u.size(), 3u);
    EXPECT_EQ(u.nprocs(), 8);
    EXPECT_EQ(u.events()[0].dst, 1);
    EXPECT_EQ(u.events()[1].kind, MessageKind::Control);
    EXPECT_DOUBLE_EQ(u.events()[2].sinceLast, 99.25);
    EXPECT_EQ(u.events()[2].bytes, 4096);
}

TEST(Trace, EventsOfSourcePreservesOrder)
{
    Trace t{4};
    t.add({0, 1, 8, MessageKind::Data, 1.0});
    t.add({1, 2, 8, MessageKind::Data, 2.0});
    t.add({0, 3, 8, MessageKind::Data, 3.0});
    auto evs = t.eventsOfSource(0);
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].dst, 1);
    EXPECT_EQ(evs[1].dst, 3);
}

TEST(Trace, LoadRejectsBadHeader)
{
    std::stringstream ss{"bogus v1 4 0\n"};
    EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsTruncatedBody)
{
    std::stringstream ss{"cchar-trace v1 4 2\n0 1 8 data 1.0\n"};
    EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsOutOfRangeNode)
{
    std::stringstream ss{"cchar-trace v1 4 1\n0 9 8 data 1.0\n"};
    EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsUnknownKind)
{
    std::stringstream ss{"cchar-trace v1 4 1\n0 1 8 warp 1.0\n"};
    EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsNegativeFields)
{
    std::stringstream ss{"cchar-trace v1 4 1\n0 1 -8 data 1.0\n"};
    EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

TEST(Trace, LoadRejectsTrailingFields)
{
    std::stringstream ss{"cchar-trace v1 4 1\n0 1 8 data 1.0 junk\n"};
    EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

// --------------------------------------------------------------------
// Lenient ingestion

TEST(TraceLenient, SkipsMalformedRecordsAndCounts)
{
    std::stringstream ss{"cchar-trace v1 4 5\n"
                         "0 1 8 data 1.0\n"
                         "0 9 8 data 1.0\n"    // node out of range
                         "1 2 8 warp 1.0\n"    // unknown kind
                         "not even a record\n" // malformed
                         "2 3 16 sync 2.5\n"};
    TraceLoadOptions opts;
    opts.errors = ErrorMode::Lenient;
    Trace t = Trace::load(ss, opts);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.skippedRecords(), 3u);
    EXPECT_EQ(t.events()[1].dst, 3);
}

TEST(TraceLenient, ReportsSkipsToDiagnosticSink)
{
    cchar::core::DiagnosticSink sink;
    cchar::core::ScopedDiagnostics guard{&sink};
    std::stringstream ss{"cchar-trace v1 4 2\n"
                         "0 1 8 warp 1.0\n"
                         "0 1 8 data 1.0\n"};
    TraceLoadOptions opts;
    opts.errors = ErrorMode::Lenient;
    Trace t = Trace::load(ss, opts);
    EXPECT_EQ(t.skippedRecords(), 1u);
    ASSERT_EQ(sink.entries().size(), 1u);
    EXPECT_EQ(sink.entries()[0].severity,
              cchar::core::DiagSeverity::Warning);
    EXPECT_NE(sink.entries()[0].message.find("line 2"),
              std::string::npos);
}

TEST(TraceLenient, TruncatedBodyIsSkippedNotFatal)
{
    std::stringstream ss{"cchar-trace v1 4 3\n0 1 8 data 1.0\n"};
    TraceLoadOptions opts;
    opts.errors = ErrorMode::Lenient;
    Trace t = Trace::load(ss, opts);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_GE(t.skippedRecords(), 1u);
}

TEST(TraceLenient, BadHeaderStillFatal)
{
    // A broken header means the whole file is suspect: lenient mode
    // only forgives record-level damage.
    std::stringstream ss{"bogus v1 4 0\n"};
    TraceLoadOptions opts;
    opts.errors = ErrorMode::Lenient;
    EXPECT_THROW(Trace::load(ss, opts), std::runtime_error);
}

TEST(TraceLenient, StrictModeViaOptionsStillThrows)
{
    std::stringstream ss{"cchar-trace v1 4 1\n0 1 8 warp 1.0\n"};
    TraceLoadOptions opts;
    opts.errors = ErrorMode::Strict;
    EXPECT_THROW(Trace::load(ss, opts), std::runtime_error);
}

} // namespace
