/**
 * @file
 * Unit tests for the fault-injection subsystem: plan parsing, the
 * deterministic injector, faulted mesh behaviour, the mp
 * retransmission protocol, replay-level retries, and the desim
 * no-progress watchdog.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/replay.hh"
#include "core/status.hh"
#include "desim/watchdog.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "mesh/mesh.hh"
#include "mp/mp.hh"
#include "stats/stats.hh"
#include "trace/trace.hh"

namespace {

using namespace cchar;
using namespace cchar::fault;
using desim::Simulator;
using desim::Task;
using trace::MessageKind;
using trace::MessageRecord;

// --------------------------------------------------------------------
// Plan parsing

TEST(FaultPlan, ParsesLinkDownClause)
{
    FaultPlan plan = FaultPlan::parse("link:3->4:down@[10ms,25ms]");
    ASSERT_EQ(plan.faults().size(), 1u);
    const FaultSpec &f = plan.faults()[0];
    EXPECT_EQ(f.kind, FaultKind::LinkDown);
    EXPECT_EQ(f.node, 3);
    EXPECT_EQ(f.peer, 4);
    EXPECT_DOUBLE_EQ(f.window.begin, 10000.0);
    EXPECT_DOUBLE_EQ(f.window.end, 25000.0);
    EXPECT_DOUBLE_EQ(plan.plannedLinkDowntimeUs(), 15000.0);
}

TEST(FaultPlan, ParsesDropCorruptAndStall)
{
    FaultPlan plan =
        FaultPlan::parse("drop:p=0.001; corrupt:p=0.01@[0,1s]\n"
                         "router:7:stall=5us");
    ASSERT_EQ(plan.faults().size(), 3u);
    EXPECT_EQ(plan.faults()[0].kind, FaultKind::Drop);
    EXPECT_DOUBLE_EQ(plan.faults()[0].probability, 0.001);
    EXPECT_FALSE(plan.faults()[0].window.bounded());
    EXPECT_EQ(plan.faults()[1].kind, FaultKind::Corrupt);
    EXPECT_DOUBLE_EQ(plan.faults()[1].window.end, 1e6);
    EXPECT_EQ(plan.faults()[2].kind, FaultKind::RouterStall);
    EXPECT_EQ(plan.faults()[2].node, 7);
    EXPECT_DOUBLE_EQ(plan.faults()[2].stallUs, 5.0);
}

TEST(FaultPlan, ParsesSeedRetryAndComments)
{
    FaultPlan plan = FaultPlan::parse(
        "# a comment\nseed=42; retry:timeout=250,max=0,backoff=3\n"
        "drop:p=0.5");
    EXPECT_EQ(plan.seed(), 42u);
    EXPECT_DOUBLE_EQ(plan.retry().ackTimeoutUs, 250.0);
    EXPECT_TRUE(plan.retry().unbounded());
    EXPECT_DOUBLE_EQ(plan.retry().backoffFactor, 3.0);
    ASSERT_EQ(plan.faults().size(), 1u);
}

TEST(FaultPlan, ParsesJsonForm)
{
    FaultPlan plan = FaultPlan::parse(
        R"({"seed": 7,
            "retry": {"timeout_us": 100, "max_attempts": 2,
                      "backoff": 1.5},
            "faults": ["link:0->1:down@[0,1ms]", "drop:p=0.25"]})");
    EXPECT_EQ(plan.seed(), 7u);
    EXPECT_EQ(plan.retry().maxAttempts, 2);
    ASSERT_EQ(plan.faults().size(), 2u);
    EXPECT_EQ(plan.faults()[0].kind, FaultKind::LinkDown);
    EXPECT_EQ(plan.faults()[1].kind, FaultKind::Drop);
}

TEST(FaultPlan, DescribeRoundTrips)
{
    FaultPlan plan =
        FaultPlan::parse("link:0->1:down@[5,10]; drop:p=0.125");
    for (const FaultSpec &f : plan.faults()) {
        FaultPlan again = FaultPlan::parse(f.describe());
        ASSERT_EQ(again.faults().size(), 1u);
        EXPECT_EQ(again.faults()[0].kind, f.kind);
    }
}

TEST(FaultPlan, RejectsMalformedClauses)
{
    EXPECT_THROW(FaultPlan::parse("garbage:xyz"), core::CCharError);
    EXPECT_THROW(FaultPlan::parse("link:0-1:down"), core::CCharError);
    EXPECT_THROW(FaultPlan::parse("drop:p=nope"), core::CCharError);
    EXPECT_THROW(FaultPlan::parse("drop:p=1.5"), core::CCharError);
    EXPECT_THROW(FaultPlan::parse("router:1:stall=-3"),
                 core::CCharError);
    EXPECT_THROW(FaultPlan::parse("drop:p=0.1@[10,5]"),
                 core::CCharError);
    try {
        FaultPlan::parse("bogus:clause");
        FAIL() << "expected CCharError";
    } catch (const core::CCharError &e) {
        EXPECT_EQ(e.status().code(), core::StatusCode::ParseError);
    }
}

// --------------------------------------------------------------------
// Randomized grammar round-trip property
//
// Plans are generated with values the default stream formatting
// renders exactly (small decimals, integral microseconds), so
// parse -> describe -> parse must reproduce the plan field-for-field,
// not merely kind-for-kind.

FaultSpec
randomSpec(stats::Rng &rng)
{
    FaultSpec s;
    switch (rng.below(4)) {
    case 0:
        s.kind = FaultKind::LinkDown;
        s.node = static_cast<int>(rng.below(64));
        s.peer = static_cast<int>(rng.below(63));
        if (s.peer >= s.node) // grammar rejects self-links
            ++s.peer;
        break;
    case 1:
        s.kind = FaultKind::Drop;
        s.probability =
            static_cast<double>(1 + rng.below(999)) / 1000.0;
        break;
    case 2:
        s.kind = FaultKind::Corrupt;
        s.probability =
            static_cast<double>(1 + rng.below(999)) / 1000.0;
        break;
    default:
        s.kind = FaultKind::RouterStall;
        s.node = static_cast<int>(rng.below(64));
        s.stallUs = static_cast<double>(1 + rng.below(500)) / 4.0;
        break;
    }
    switch (rng.below(3)) {
    case 0: // whole-run window (default)
        break;
    case 1: { // bounded window
        double b = static_cast<double>(rng.below(1000));
        s.window.begin = b;
        s.window.end = b + 1.0 + static_cast<double>(rng.below(5000));
        break;
    }
    default: // open-ended window starting late
        s.window.begin = 1.0 + static_cast<double>(rng.below(1000));
        break;
    }
    return s;
}

std::string
formatPlan(const FaultPlan &plan)
{
    std::ostringstream os;
    os << "seed=" << plan.seed() << "; retry:timeout="
       << plan.retry().ackTimeoutUs << "us,max="
       << plan.retry().maxAttempts << ",backoff="
       << plan.retry().backoffFactor;
    for (const FaultSpec &f : plan.faults())
        os << "; " << f.describe();
    return os.str();
}

TEST(FaultPlanProperty, ParseFormatParseIsIdentity)
{
    stats::Rng rng{0xf417};
    for (int round = 0; round < 200; ++round) {
        FaultPlan plan;
        plan.setSeed(rng.below(1u << 30));
        RetryConfig retry;
        retry.ackTimeoutUs = static_cast<double>(1 + rng.below(5000));
        retry.maxAttempts = static_cast<int>(rng.below(10));
        retry.backoffFactor =
            1.0 + static_cast<double>(rng.below(12)) / 4.0;
        plan.setRetry(retry);
        int nfaults = 1 + static_cast<int>(rng.below(5));
        for (int i = 0; i < nfaults; ++i)
            plan.add(randomSpec(rng));

        std::string text = formatPlan(plan);
        FaultPlan again = FaultPlan::parse(text);
        // The formatted form must itself be a fixpoint.
        EXPECT_EQ(formatPlan(again), text) << "round " << round;

        EXPECT_EQ(again.seed(), plan.seed());
        EXPECT_EQ(again.retry().ackTimeoutUs, retry.ackTimeoutUs);
        EXPECT_EQ(again.retry().maxAttempts, retry.maxAttempts);
        EXPECT_EQ(again.retry().backoffFactor, retry.backoffFactor);
        ASSERT_EQ(again.faults().size(), plan.faults().size());
        for (std::size_t i = 0; i < plan.faults().size(); ++i) {
            const FaultSpec &a = plan.faults()[i];
            const FaultSpec &b = again.faults()[i];
            EXPECT_EQ(b.kind, a.kind) << "round " << round;
            EXPECT_EQ(b.node, a.node);
            EXPECT_EQ(b.peer, a.peer);
            EXPECT_EQ(b.probability, a.probability);
            EXPECT_EQ(b.stallUs, a.stallUs);
            EXPECT_EQ(b.window.begin, a.window.begin);
            EXPECT_EQ(b.window.end, a.window.end);
        }
    }
}

/** Splice random damage into a valid clause. */
std::string
mangleClause(stats::Rng &rng, const std::string &clause)
{
    switch (rng.below(5)) {
    case 0: // chop the tail
        return clause.substr(0, 1 + rng.below(clause.size() - 1));
    case 1: // flip a character to line noise
    {
        std::string out = clause;
        out[rng.below(out.size())] = '~';
        return out;
    }
    case 2: // duplicate the probability sign-post
        return clause + "=0.5";
    case 3: // out-of-range probability
        return "drop:p=" + std::to_string(2 + rng.below(9)) + ".5";
    default: // inverted window
        return clause + "@[100,5]";
    }
}

TEST(FaultPlanProperty, MalformedSpecsFailWithStatusNeverAbort)
{
    stats::Rng rng{0xbad5eed};
    int rejected = 0;
    for (int round = 0; round < 300; ++round) {
        FaultSpec seedSpec = randomSpec(rng);
        std::string text = mangleClause(rng, seedSpec.describe());
        try {
            FaultPlan plan = FaultPlan::parse(text);
            // Some mangled clauses stay well-formed (a '~' inside a
            // comment-free numeric field usually does not) — parsing
            // successfully is acceptable; crashing is not.
            (void)plan;
        } catch (const core::CCharError &err) {
            ++rejected;
            // Always a classified status that maps to a CLI exit
            // code, never a bare exception or an abort.
            EXPECT_EQ(err.status().code(), core::StatusCode::ParseError);
            EXPECT_EQ(core::exitCodeOf(err.status().code()), 3);
        }
    }
    // The mangler must actually exercise the error paths.
    EXPECT_GT(rejected, 150);
}

// --------------------------------------------------------------------
// Injector determinism

TEST(FaultInjector, SameSeedSameDrawSequence)
{
    FaultPlan plan = FaultPlan::parse("seed=99; drop:p=0.3");
    FaultInjector a{plan};
    FaultInjector b{plan};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.drawDrop(double(i)), b.drawDrop(double(i)));
}

TEST(FaultInjector, DifferentSeedDifferentSequence)
{
    FaultPlan p1 = FaultPlan::parse("seed=1; drop:p=0.5");
    FaultPlan p2 = FaultPlan::parse("seed=2; drop:p=0.5");
    FaultInjector a{p1};
    FaultInjector b{p2};
    int diff = 0;
    for (int i = 0; i < 256; ++i)
        diff += a.drawDrop(double(i)) != b.drawDrop(double(i));
    EXPECT_GT(diff, 0);
}

TEST(FaultInjector, WindowGatesDecisions)
{
    FaultPlan plan = FaultPlan::parse("link:0->1:down@[10,20]");
    FaultInjector inj{plan};
    EXPECT_FALSE(inj.linkDown(0, 1, 5.0));
    EXPECT_TRUE(inj.linkDown(0, 1, 10.0));
    EXPECT_TRUE(inj.linkDown(0, 1, 19.9));
    EXPECT_FALSE(inj.linkDown(0, 1, 20.0));
    EXPECT_FALSE(inj.linkDown(1, 0, 15.0)); // directed: reverse is up
}

TEST(FaultInjector, RouterStallAccumulates)
{
    FaultPlan plan =
        FaultPlan::parse("router:3:stall=2; router:3:stall=5");
    FaultInjector inj{plan};
    EXPECT_DOUBLE_EQ(inj.routerStallUs(3, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(inj.routerStallUs(4, 0.0), 0.0);
}

// --------------------------------------------------------------------
// Faulted mesh behaviour

mesh::MeshConfig
meshCfg(FaultInjector *inj)
{
    mesh::MeshConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.faults = inj;
    return cfg;
}

mesh::Packet
pkt(int src, int dst, int bytes)
{
    mesh::Packet p;
    p.src = src;
    p.dst = dst;
    p.bytes = bytes;
    p.kind = MessageKind::Data;
    return p;
}

TEST(FaultedMesh, DownLinkTailDropsWorm)
{
    FaultPlan plan = FaultPlan::parse("link:0->1:down");
    FaultInjector inj{plan};
    Simulator sim;
    trace::TrafficLog log;
    auto cfg = meshCfg(&inj);
    cfg.adaptiveRouting = false; // force the worm onto the dead link
    mesh::MeshNetwork net{sim, cfg, &log};
    MessageRecord out;
    sim.spawn([](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(0, 3, 16));
    }(net, out));
    sim.run();
    EXPECT_FALSE(out.delivered);
    EXPECT_EQ(inj.linkDrops(), 1u);
    EXPECT_EQ(log.size(), 0u); // lost worms are not logged
}

TEST(FaultedMesh, DownLinkReroutesWhenAdaptive)
{
    // Same dead link, adaptive routing left on (the default): the
    // worm detours via a west-first-legal path and still arrives.
    FaultPlan plan = FaultPlan::parse("link:0->1:down");
    FaultInjector inj{plan};
    Simulator sim;
    mesh::MeshNetwork net{sim, meshCfg(&inj)};
    MessageRecord out;
    sim.spawn([](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(0, 3, 16));
    }(net, out));
    sim.run();
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(inj.linkDrops(), 0u);
    EXPECT_EQ(inj.reroutes(), 1u);
    EXPECT_GE(inj.rerouteExtraHops(), 2u); // 0->3 detour costs >= 2
    EXPECT_EQ(net.reroutedPackets(), 1u);
}

TEST(FaultedMesh, RerouteKeepsMinimalHopsWhenPossible)
{
    // 0->3 is blocked at its first East hop, but a same-length XY
    // alternative does not exist under west-first on the bottom row,
    // so the detour goes up and over: extra hops are even and > 0.
    FaultPlan plan = FaultPlan::parse("link:1->2:down");
    FaultInjector inj{plan};
    Simulator sim;
    mesh::MeshNetwork net{sim, meshCfg(&inj)};
    MessageRecord out;
    sim.spawn([](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(1, 2, 16));
    }(net, out));
    sim.run();
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(inj.reroutes(), 1u);
    EXPECT_EQ(inj.rerouteExtraHops(), 2u); // 1->5->6->2 vs 1->2
}

TEST(FaultedMesh, TorusReroutesAlongLongerArc)
{
    // On a 4x4 torus the ring 0..3 offers two arcs; with 0->1 down
    // the worm takes the three-hop westward arc 0->3->2->1 instead.
    FaultPlan plan = FaultPlan::parse("link:0->1:down");
    FaultInjector inj{plan};
    auto cfg = meshCfg(&inj);
    cfg.topology = mesh::Topology::Torus;
    cfg.virtualChannels = 2;
    Simulator sim;
    mesh::MeshNetwork net{sim, cfg};
    MessageRecord out;
    sim.spawn([](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(0, 1, 16));
    }(net, out));
    sim.run();
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(inj.reroutes(), 1u);
    EXPECT_EQ(inj.rerouteExtraHops(), 2u); // 3-hop arc vs 1-hop arc
}

TEST(FaultedMesh, UnreachableDownWestLinkFallsThrough)
{
    // West hops cannot be detoured under the west-first turn model:
    // the reroute search fails and the worm tail-drops as before.
    FaultPlan plan = FaultPlan::parse("link:1->0:down");
    FaultInjector inj{plan};
    Simulator sim;
    mesh::MeshNetwork net{sim, meshCfg(&inj)};
    MessageRecord out;
    sim.spawn([](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(1, 0, 16));
    }(net, out));
    sim.run();
    EXPECT_FALSE(out.delivered);
    EXPECT_EQ(inj.reroutes(), 0u);
    EXPECT_EQ(inj.linkDrops(), 1u);
}

TEST(FaultedMesh, ReverseDirectionUnaffected)
{
    FaultPlan plan = FaultPlan::parse("link:0->1:down");
    FaultInjector inj{plan};
    Simulator sim;
    mesh::MeshNetwork net{sim, meshCfg(&inj)};
    MessageRecord out;
    sim.spawn([](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(1, 0, 16));
    }(net, out));
    sim.run();
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(inj.linkDrops(), 0u);
}

TEST(FaultedMesh, CertainDropLosesEveryPacket)
{
    FaultPlan plan = FaultPlan::parse("drop:p=1");
    FaultInjector inj{plan};
    Simulator sim;
    mesh::MeshNetwork net{sim, meshCfg(&inj)};
    std::vector<MessageRecord> recs;
    auto sender = [](mesh::MeshNetwork &n, int src, int dst,
                     std::vector<MessageRecord> &out) -> Task<void> {
        out.push_back(co_await n.transfer(pkt(src, dst, 16)));
    };
    sim.spawn(sender(net, 0, 3, recs));
    sim.spawn(sender(net, 4, 7, recs));
    sim.run();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_FALSE(recs[0].delivered);
    EXPECT_FALSE(recs[1].delivered);
    EXPECT_EQ(inj.drops(), 2u);
}

TEST(FaultedMesh, CertainCorruptionDeliversTainted)
{
    FaultPlan plan = FaultPlan::parse("corrupt:p=1");
    FaultInjector inj{plan};
    Simulator sim;
    trace::TrafficLog log;
    mesh::MeshNetwork net{sim, meshCfg(&inj), &log};
    MessageRecord out;
    sim.spawn([](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
        o = co_await n.transfer(pkt(0, 5, 32));
    }(net, out));
    sim.run();
    EXPECT_TRUE(out.delivered);
    EXPECT_TRUE(out.corrupted);
    EXPECT_EQ(inj.corrupts(), 1u);
    ASSERT_EQ(log.size(), 1u); // corrupted worms still traverse
}

TEST(FaultedMesh, RouterStallAddsLatency)
{
    Simulator simA;
    mesh::MeshConfig plain = meshCfg(nullptr);
    mesh::MeshNetwork netA{simA, plain};
    MessageRecord base;
    simA.spawn(
        [](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
            o = co_await n.transfer(pkt(0, 3, 16));
        }(netA, base));
    simA.run();

    FaultPlan plan = FaultPlan::parse("router:0:stall=5");
    FaultInjector inj{plan};
    Simulator simB;
    mesh::MeshNetwork netB{simB, meshCfg(&inj)};
    MessageRecord slow;
    simB.spawn(
        [](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
            o = co_await n.transfer(pkt(0, 3, 16));
        }(netB, slow));
    simB.run();

    EXPECT_NEAR(slow.latency(), base.latency() + 5.0, 1e-9);
    EXPECT_EQ(inj.routerStalls(), 1u);
}

TEST(FaultedMesh, NoPlanMatchesFaultFreeTiming)
{
    // An injector with an empty plan must not perturb the simulation.
    FaultPlan empty;
    FaultInjector inj{empty};
    Simulator simA, simB;
    mesh::MeshNetwork netA{simA, meshCfg(nullptr)};
    mesh::MeshNetwork netB{simB, meshCfg(&inj)};
    MessageRecord a, b;
    simA.spawn(
        [](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
            o = co_await n.transfer(pkt(0, 15, 64));
        }(netA, a));
    simB.spawn(
        [](mesh::MeshNetwork &n, MessageRecord &o) -> Task<void> {
            o = co_await n.transfer(pkt(0, 15, 64));
        }(netB, b));
    simA.run();
    simB.run();
    EXPECT_DOUBLE_EQ(a.latency(), b.latency());
    EXPECT_TRUE(b.delivered);
    EXPECT_FALSE(b.corrupted);
}

// --------------------------------------------------------------------
// mp retransmission protocol

TEST(MpRetransmit, RecoversFromLossyLink)
{
    // Unbounded retries: every message eventually lands even though
    // each attempt loses the data or the ack 19% of the time.
    FaultPlan plan =
        FaultPlan::parse("seed=5; drop:p=0.1; retry:timeout=200,max=0");
    FaultInjector inj{plan};
    Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    cfg.mesh.faults = &inj;
    mp::MpWorld world{sim, cfg};
    std::vector<int> got;
    world.spawnRank(0, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 0};
        for (int i = 0; i < 20; ++i)
            co_await ctx.send(1, 64, i);
    }(world));
    world.spawnRank(1, [](mp::MpWorld &w,
                          std::vector<int> &out) -> Task<void> {
        mp::MpContext ctx{w, 1};
        for (int i = 0; i < 20; ++i)
            out.push_back(co_await ctx.recv(0, i));
    }(world, got));
    world.run();
    // Every message arrives exactly once despite the losses.
    EXPECT_EQ(got.size(), 20u);
    EXPECT_GT(world.retransmits(), 0u);
    EXPECT_EQ(world.deliveryFailures(), 0u);
    EXPECT_GT(world.acksReceived(), 0u);
}

TEST(MpRetransmit, BoundedRetriesGiveUpOnDeadLink)
{
    FaultPlan plan =
        FaultPlan::parse("link:0->1:down; retry:timeout=50,max=3");
    FaultInjector inj{plan};
    Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    cfg.mesh.faults = &inj;
    cfg.mesh.adaptiveRouting = false; // no detour: exhaust the budget
    mp::MpWorld world{sim, cfg};
    world.spawnRank(0, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 0};
        co_await ctx.send(1, 64);
    }(world));
    world.run();
    EXPECT_EQ(world.deliveryFailures(), 1u);
    EXPECT_EQ(world.retransmits(), 2u); // 3 attempts = 2 retries
    EXPECT_GE(inj.linkDrops(), 3u);
}

TEST(MpRetransmit, RerouteDeliversOverDeadLink)
{
    // Same dead link and budget, adaptive routing on: the first
    // attempt detours (0->2->3->1 is west-first legal) and no retry
    // budget is spent at all.
    FaultPlan plan =
        FaultPlan::parse("link:0->1:down; retry:timeout=50,max=3");
    FaultInjector inj{plan};
    Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    cfg.mesh.faults = &inj;
    mp::MpWorld world{sim, cfg};
    int got = 0;
    world.spawnRank(0, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 0};
        co_await ctx.send(1, 64);
    }(world));
    world.spawnRank(1, [](mp::MpWorld &w, int &out) -> Task<void> {
        mp::MpContext ctx{w, 1};
        out = co_await ctx.recv(0);
    }(world, got));
    world.run();
    EXPECT_EQ(got, 64);
    EXPECT_EQ(world.deliveryFailures(), 0u);
    EXPECT_EQ(world.retransmits(), 0u);
    EXPECT_GE(inj.reroutes(), 1u); // data worm (+ its ack path if hit)
    EXPECT_EQ(inj.linkDrops(), 0u);
}

TEST(MpRetransmit, FaultFreeWorldKeepsLegacyPath)
{
    // Without an injector the world must not emit acks or sequence
    // bookkeeping — the trace log sees exactly the app's messages.
    Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    mp::MpWorld world{sim, cfg};
    int got = 0;
    world.spawnRank(0, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 0};
        co_await ctx.send(1, 128);
    }(world));
    world.spawnRank(1, [](mp::MpWorld &w, int &out) -> Task<void> {
        mp::MpContext ctx{w, 1};
        out = co_await ctx.recv(0);
    }(world, got));
    world.run();
    EXPECT_EQ(got, 128);
    EXPECT_EQ(world.retransmits(), 0u);
    EXPECT_EQ(world.acksReceived(), 0u);
    EXPECT_EQ(world.log().size(), 1u);
}

// --------------------------------------------------------------------
// Replay resilience

trace::Trace
tinyTrace()
{
    trace::Trace t{4};
    t.add({0, 1, 64, MessageKind::Data, 1.0});
    t.add({1, 2, 64, MessageKind::Data, 1.0});
    t.add({2, 3, 64, MessageKind::Data, 1.0});
    return t;
}

TEST(ReplayResilience, RetriesUntilDelivered)
{
    FaultPlan plan = FaultPlan::parse("seed=11; drop:p=0.5");
    FaultInjector inj{plan};
    mesh::MeshConfig cfg;
    cfg.width = 2;
    cfg.height = 2;
    core::ReplayOptions opts;
    opts.faults = &inj;
    auto res = core::TraceReplayer::replay(tinyTrace(), cfg, opts);
    // All three messages eventually land intact.
    EXPECT_EQ(res.log.size(), 3u);
    EXPECT_EQ(res.deliveryFailures, 0u);
    EXPECT_EQ(res.retransmits, inj.drops());
}

TEST(ReplayResilience, BoundedBudgetReportsFailures)
{
    FaultPlan plan =
        FaultPlan::parse("link:0->1:down; retry:timeout=10,max=2");
    FaultInjector inj{plan};
    mesh::MeshConfig cfg;
    cfg.width = 2;
    cfg.height = 2;
    cfg.adaptiveRouting = false; // no detour: exhaust the budget
    core::ReplayOptions opts;
    opts.faults = &inj;
    auto res = core::TraceReplayer::replay(tinyTrace(), cfg, opts);
    EXPECT_EQ(res.deliveryFailures, 1u);
    EXPECT_EQ(res.linkDrops, 2u); // 2 attempts, both on the down link
    EXPECT_EQ(res.log.size(), 2u);
}

TEST(ReplayResilience, RerouteDeliversWholeTrace)
{
    // Adaptive routing on (the default): the 0->1 message detours
    // and the replay completes with zero failures and zero retries.
    FaultPlan plan =
        FaultPlan::parse("link:0->1:down; retry:timeout=10,max=2");
    FaultInjector inj{plan};
    mesh::MeshConfig cfg;
    cfg.width = 2;
    cfg.height = 2;
    core::ReplayOptions opts;
    opts.faults = &inj;
    auto res = core::TraceReplayer::replay(tinyTrace(), cfg, opts);
    EXPECT_EQ(res.deliveryFailures, 0u);
    EXPECT_EQ(res.retransmits, 0u);
    EXPECT_EQ(res.log.size(), 3u);
    EXPECT_EQ(inj.reroutes(), 1u); // only 0->1 crossed the dead link
}

// --------------------------------------------------------------------
// Sliding-window retransmission (retry:window=W, see DESIGN §6g)

/**
 * Run a two-rank MpWorld under `planSpec`: rank 0 sends `messages`
 * distinct-size messages to rank 1, rank 1 receives them in order.
 * Returns the received sizes (in delivery order to the app) and the
 * world's traffic log records via out-params.
 */
void
runWindowSession(const std::string &planSpec, int messages,
                 std::vector<int> &received,
                 std::vector<MessageRecord> &log,
                 std::uint64_t &retransmits)
{
    FaultPlan plan = FaultPlan::parse(planSpec);
    FaultInjector inj{plan};
    Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    cfg.mesh.faults = &inj;
    mp::MpWorld world{sim, cfg};
    world.spawnRank(0, [](mp::MpWorld &w, int n) -> Task<void> {
        mp::MpContext ctx{w, 0};
        for (int i = 0; i < n; ++i)
            co_await ctx.send(1, 64 + i);
    }(world, messages));
    world.spawnRank(1,
                    [](mp::MpWorld &w, int n,
                       std::vector<int> &out) -> Task<void> {
                        mp::MpContext ctx{w, 1};
                        for (int i = 0; i < n; ++i)
                            out.push_back(co_await ctx.recv(0));
                    }(world, messages, received));
    world.run();
    log = world.log().records();
    retransmits = world.retransmits();
}

TEST(MpWindow, WindowOneIsStopAndWait)
{
    // retry:window=1 must be byte-identical to the pre-window
    // stop-and-wait protocol (the same legacy code path runs).
    const std::string base = "seed=5; drop:p=0.2; retry:timeout=30,max=0";
    std::vector<int> gotA, gotB;
    std::vector<MessageRecord> logA, logB;
    std::uint64_t rtA = 0, rtB = 0;
    runWindowSession(base, 10, gotA, logA, rtA);
    runWindowSession(base + ",window=1", 10, gotB, logB, rtB);
    EXPECT_EQ(gotA, gotB);
    EXPECT_EQ(rtA, rtB);
    ASSERT_EQ(logA.size(), logB.size());
    for (std::size_t i = 0; i < logA.size(); ++i) {
        EXPECT_EQ(logA[i].src, logB[i].src);
        EXPECT_EQ(logA[i].dst, logB[i].dst);
        EXPECT_EQ(logA[i].bytes, logB[i].bytes);
        EXPECT_DOUBLE_EQ(logA[i].injectTime, logB[i].injectTime);
        EXPECT_DOUBLE_EQ(logA[i].deliverTime, logB[i].deliverTime);
    }
}

TEST(MpWindow, WindowEightDeliversSameMessageSequence)
{
    // The reordered-delivery invariant: whatever the wire reorders or
    // duplicates, the receiver's app sees the same in-order sequence
    // a window of 1 delivers (per-destination in-order delivery).
    const std::string base = "seed=5; drop:p=0.25; retry:timeout=30,max=0";
    std::vector<int> gotA, gotB;
    std::vector<MessageRecord> logA, logB;
    std::uint64_t rtA = 0, rtB = 0;
    runWindowSession(base + ",window=1", 20, gotA, logA, rtA);
    runWindowSession(base + ",window=8", 20, gotB, logB, rtB);
    ASSERT_EQ(gotA.size(), 20u);
    EXPECT_EQ(gotA, gotB);
    // The pipelined window needs no more data-packet wire attempts
    // than stop-and-wait obtained (same Bernoulli stream), and with 8
    // packets in flight the makespan can only shrink or hold.
    EXPECT_GT(rtB, 0u) << "p=0.25 over 20 messages must retransmit";
}

TEST(MpWindow, CertainDropFailsDeliveriesWithoutTrippingWatchdog)
{
    // drop:1.0 regression (DESIGN §6b caveat): a bounded retry budget
    // draining is progress toward the accounted delivery-failure
    // deadlock exit, not a livelock — the watchdog must stay quiet
    // and the run must end in the diagnosable exit-4 deadlock path.
    FaultPlan plan =
        FaultPlan::parse("drop:p=1; retry:timeout=20,max=3,window=4");
    FaultInjector inj{plan};
    Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    cfg.mesh.faults = &inj;
    mp::MpWorld world{sim, cfg};
    // Check horizon (600us) comfortably above the bounded drain
    // (~220us with this budget), mirroring the drivers' much larger
    // 40ms default: resolved failures count as probe progress.
    desim::Watchdog dog{sim, {.checkPeriodUs = 200.0, .stallChecks = 3}};
    dog.setProgressProbe([&world] {
        return world.network().messageCount() + world.deliveryFailures();
    });
    dog.arm();
    world.spawnRank(0, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 0};
        co_await ctx.send(1, 64);
        co_await ctx.send(1, 65);
    }(world));
    world.spawnRank(1, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 1};
        co_await ctx.recv(0);
        co_await ctx.recv(0);
    }(world));
    try {
        world.run();
        FAIL() << "expected an application deadlock";
    } catch (const core::CCharError &e) {
        EXPECT_EQ(e.status().code(), core::StatusCode::SimError);
        EXPECT_NE(std::string{e.what()}.find("delivery failures"),
                  std::string::npos);
    }
    EXPECT_FALSE(dog.tripped());
    EXPECT_EQ(world.deliveryFailures(), 2u);
    EXPECT_EQ(world.retransmits(), 4u); // 3 attempts each = 2 retries
}

TEST(MpWindow, UnboundedNoDeliveryLoopStillTripsWatchdog)
{
    // The counterpart guarantee: max=0 on a hopeless plan is a real
    // livelock (no deliveries, no accounted failures) and the
    // watchdog must convert it into the exit-5 diagnosis.
    FaultPlan plan =
        FaultPlan::parse("drop:p=1; retry:timeout=20,max=0,window=2");
    FaultInjector inj{plan};
    Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    cfg.mesh.faults = &inj;
    mp::MpWorld world{sim, cfg};
    desim::Watchdog dog{sim, {.checkPeriodUs = 50.0, .stallChecks = 3}};
    dog.setProgressProbe([&world] {
        return world.network().messageCount() + world.deliveryFailures();
    });
    dog.arm();
    world.spawnRank(0, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 0};
        co_await ctx.send(1, 64);
    }(world));
    world.spawnRank(1, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 1};
        co_await ctx.recv(0);
    }(world));
    EXPECT_THROW(world.run(), desim::WatchdogError);
    EXPECT_TRUE(dog.tripped());
    EXPECT_EQ(world.deliveryFailures(), 0u);
}

TEST(MpWindow, PerRankCountersAttributeRecoveryWork)
{
    FaultPlan plan =
        FaultPlan::parse("seed=9; corrupt:p=0.4; retry:timeout=40,max=0");
    FaultInjector inj{plan};
    Simulator sim;
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    cfg.mesh.faults = &inj;
    mp::MpWorld world{sim, cfg};
    std::vector<int> got;
    world.spawnRank(0, [](mp::MpWorld &w) -> Task<void> {
        mp::MpContext ctx{w, 0};
        for (int i = 0; i < 10; ++i)
            co_await ctx.send(1, 64);
    }(world));
    world.spawnRank(1,
                    [](mp::MpWorld &w, std::vector<int> &out) -> Task<void> {
                        mp::MpContext ctx{w, 1};
                        for (int i = 0; i < 10; ++i)
                            out.push_back(co_await ctx.recv(0));
                    }(world, got));
    world.run();
    ASSERT_EQ(world.rankRetransmits().size(), 4u);
    ASSERT_EQ(world.rankCorruptDiscards().size(), 4u);
    // Sender-attributed retries live on rank 0 (acks can be corrupted
    // too, so rank 1 never retransmits but rank 0 may discard); every
    // injector corruption ends as exactly one receiver discard.
    EXPECT_EQ(world.rankRetransmits()[0], world.retransmits());
    EXPECT_EQ(world.rankRetransmits()[1], 0u);
    std::uint64_t discards = 0;
    for (std::uint64_t d : world.rankCorruptDiscards())
        discards += d;
    EXPECT_GT(world.rankCorruptDiscards()[1], 0u);
    EXPECT_EQ(discards, inj.corrupts());
}

// --------------------------------------------------------------------
// Watchdog

TEST(Watchdog, TripsOnLivelock)
{
    // An endless self-rescheduling poller makes no probe progress.
    Simulator sim;
    std::function<void()> tick = [&] {
        sim.schedule(tick, sim.now() + 1.0);
    };
    sim.schedule(tick, 1.0);
    desim::Watchdog dog{sim, {.checkPeriodUs = 10.0, .stallChecks = 3}};
    dog.setProgressProbe([] { return std::uint64_t{0}; });
    dog.arm();
    EXPECT_THROW(sim.run(), desim::WatchdogError);
    EXPECT_TRUE(dog.tripped());
}

TEST(Watchdog, StaysQuietWhenProgressing)
{
    Simulator sim;
    std::uint64_t work = 0;
    std::function<void()> tick = [&] {
        if (++work < 100)
            sim.schedule(tick, sim.now() + 1.0);
    };
    sim.schedule(tick, 1.0);
    desim::Watchdog dog{sim, {.checkPeriodUs = 5.0, .stallChecks = 2}};
    dog.setProgressProbe([&] { return work; });
    dog.arm();
    EXPECT_NO_THROW(sim.run());
    EXPECT_FALSE(dog.tripped());
    EXPECT_GT(dog.checks(), 0u);
}

TEST(Watchdog, NeverKeepsDrainedSimAlive)
{
    Simulator sim;
    desim::Watchdog dog{sim, {.checkPeriodUs = 1.0, .stallChecks = 2}};
    dog.setProgressProbe([] { return std::uint64_t{0}; });
    dog.arm();
    sim.run(); // no events: returns immediately, no trip
    EXPECT_FALSE(dog.tripped());
}

TEST(Watchdog, SimTimeHorizonTrips)
{
    Simulator sim;
    std::uint64_t work = 0;
    std::function<void()> tick = [&] {
        ++work; // real progress, but past the horizon
        sim.schedule(tick, sim.now() + 1.0);
    };
    sim.schedule(tick, 1.0);
    desim::Watchdog dog{
        sim,
        {.checkPeriodUs = 10.0, .stallChecks = 100,
         .maxSimTimeUs = 50.0}};
    dog.setProgressProbe([&] { return work; });
    dog.arm();
    EXPECT_THROW(sim.run(), desim::WatchdogError);
}

// --------------------------------------------------------------------
// End-to-end determinism

TEST(FaultDeterminism, SameSeedSamePlanSameOutcome)
{
    auto run = [](std::uint64_t seed) {
        FaultPlan plan = FaultPlan::parse("drop:p=0.3; corrupt:p=0.1");
        plan.setSeed(seed);
        FaultInjector inj{plan};
        mesh::MeshConfig cfg;
        cfg.width = 2;
        cfg.height = 2;
        core::ReplayOptions opts;
        opts.faults = &inj;
        auto res = core::TraceReplayer::replay(tinyTrace(), cfg, opts);
        std::ostringstream os;
        os << res.makespan << '|' << res.retransmits << '|'
           << res.droppedPackets << '|' << res.corruptedPackets;
        for (const auto &r : res.log.records())
            os << '|' << r.src << ',' << r.dst << ',' << r.deliverTime;
        return os.str();
    };
    EXPECT_EQ(run(123), run(123));
    EXPECT_NE(run(123), run(321));
}

// --------------------------------------------------------------------
// Status / exit-code model

TEST(Status, ExitCodeMapping)
{
    using core::StatusCode;
    EXPECT_EQ(core::exitCodeOf(StatusCode::Ok), 0);
    EXPECT_EQ(core::exitCodeOf(StatusCode::UsageError), 2);
    EXPECT_EQ(core::exitCodeOf(StatusCode::ParseError), 3);
    EXPECT_EQ(core::exitCodeOf(StatusCode::IoError), 3);
    EXPECT_EQ(core::exitCodeOf(StatusCode::SimError), 4);
    EXPECT_EQ(core::exitCodeOf(StatusCode::WatchdogTrip), 5);
}

TEST(Status, DiagnosticSinkBoundsRetention)
{
    core::DiagnosticSink sink;
    core::ScopedDiagnostics guard{&sink};
    for (int i = 0; i < 100; ++i)
        core::reportDiagnostic(core::DiagSeverity::Warning, "w");
    EXPECT_EQ(sink.total(), 100u);
    EXPECT_LE(sink.entries().size(), 64u);
}

} // namespace
