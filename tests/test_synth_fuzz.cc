/**
 * @file
 * Seeded, deterministic fuzz tests for the synthesis model loader
 * (SyntheticModel::fromJson), in the mold of test_trace_fuzz.cc.
 *
 * Strategy: start from a real characterization JSON (produced by the
 * actual pipeline, so the corpus tracks the real schema), then apply
 * mutations — truncation at every stride offset, seeded byte
 * corruption, targeted semantic damage to named fields. The contract
 * under test: every malformed or semantically invalid document raises
 * CCharError mapping to process exit code 3 (ParseError), with a
 * message that names what was wrong; nothing ever aborts, loops, or
 * allocates unboundedly (hostile size fields are range-checked before
 * any reservation).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "apps/registry.hh"
#include "core/core.hh"
#include "stats/stats.hh"

namespace {

using namespace cchar;
using core::CCharError;
using core::SyntheticModel;

/** One real characterization JSON, produced once per process. */
const std::string &
baseDocument()
{
    static const std::string doc = [] {
        auto app = apps::makeSharedMemoryApp("is");
        ccnuma::MachineConfig cfg;
        cfg.mesh.width = 4;
        cfg.mesh.height = 4;
        core::CharacterizationPipeline pipeline;
        core::CharacterizationReport report =
            pipeline.runDynamic(*app, cfg);
        std::ostringstream os;
        report.writeJson(os);
        return os.str();
    }();
    return doc;
}

/**
 * Loading must either succeed or throw a CCharError that the CLI maps
 * to exit 3 — never any other exception, never an abort.
 */
void
expectParseErrorOrSuccess(const std::string &text,
                          const std::string &what)
{
    try {
        (void)SyntheticModel::fromJson(text);
    } catch (const CCharError &err) {
        EXPECT_EQ(core::exitCodeOf(err.status().code()), 3) << what;
    } catch (const std::exception &err) {
        FAIL() << what << ": non-CCharError escaped: " << err.what();
    }
}

/** The mutation is known-bad: it must throw, naming `field`. */
void
expectNamedFailure(const std::string &text, const std::string &field)
{
    try {
        (void)SyntheticModel::fromJson(text);
        FAIL() << "loader accepted a document with damaged '" << field
               << "'";
    } catch (const CCharError &err) {
        EXPECT_EQ(core::exitCodeOf(err.status().code()), 3) << field;
        EXPECT_NE(std::string{err.what()}.find(field),
                  std::string::npos)
            << "error message does not name '" << field
            << "': " << err.what();
    }
}

/** Replace the first occurrence of `from` (must exist) with `to`. */
std::string
replaceOnce(const std::string &text, const std::string &from,
            const std::string &to)
{
    std::size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    std::string out = text;
    out.replace(pos, from.size(), to);
    return out;
}

// --------------------------------------------------------------------
// The base document itself must load

TEST(SynthFuzz, BaseDocumentLoads)
{
    SyntheticModel model = SyntheticModel::fromJson(baseDocument());
    EXPECT_EQ(model.nprocs, 16);
    EXPECT_FALSE(model.sources.empty());
    EXPECT_FALSE(model.lengthPmf.empty());
}

// --------------------------------------------------------------------
// Truncation: every prefix is either rejected cleanly or (never, in
// practice) accepted — nothing crashes

TEST(SynthFuzz, EveryTruncationIsRejectedCleanly)
{
    const std::string &doc = baseDocument();
    // Prime stride keeps the cost bounded while hitting offsets in
    // every syntactic context (mid-string, mid-number, mid-object).
    for (std::size_t cut = 0; cut < doc.size(); cut += 97) {
        std::string prefix = doc.substr(0, cut);
        try {
            (void)SyntheticModel::fromJson(prefix);
            FAIL() << "loader accepted a " << cut << "-byte prefix";
        } catch (const CCharError &err) {
            EXPECT_EQ(core::exitCodeOf(err.status().code()), 3)
                << "cut " << cut;
        }
    }
}

// --------------------------------------------------------------------
// Seeded byte corruption: flip bytes anywhere, survive everything

TEST(SynthFuzz, SeededByteCorruptionNeverAborts)
{
    const std::string &doc = baseDocument();
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        stats::Rng rng{seed * 2027};
        std::string mutated = doc;
        int flips = 1 + static_cast<int>(rng.below(4));
        for (int f = 0; f < flips; ++f) {
            std::size_t pos = rng.below(mutated.size());
            mutated[pos] = static_cast<char>(rng.below(256));
        }
        expectParseErrorOrSuccess(mutated, "seed " +
                                               std::to_string(seed));
    }
}

TEST(SynthFuzz, BinaryGarbageIsRejected)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        stats::Rng rng{seed * 131};
        std::string junk;
        std::size_t len = 1 + rng.below(2048);
        for (std::size_t i = 0; i < len; ++i)
            junk += static_cast<char>(rng.below(256));
        expectParseErrorOrSuccess(junk,
                                  "seed " + std::to_string(seed));
    }
}

// --------------------------------------------------------------------
// Targeted semantic damage: known-bad fields fail by name

TEST(SynthFuzz, DamagedFieldsFailWithNamedErrors)
{
    const std::string &doc = baseDocument();

    expectNamedFailure(replaceOnce(doc, "\"nprocs\":16", "\"nprocs\":0"),
                       "nprocs");
    expectNamedFailure(
        replaceOnce(doc, "\"mesh\":{\"width\":4", "\"mesh\":{\"width\":0"),
        "width");
    expectNamedFailure(
        replaceOnce(doc, "\"topology\":\"mesh\"", "\"topology\":\"ring\""),
        "topology");
    expectNamedFailure(replaceOnce(doc, "\"vcs\":1", "\"vcs\":99"),
                       "vcs");
    // More processes than the scaled board has nodes.
    expectNamedFailure(replaceOnce(doc, "\"nprocs\":16", "\"nprocs\":17"),
                       "nprocs");
    // An unknown temporal family cannot be reconstructed.
    expectNamedFailure(
        replaceOnce(doc, "\"family\":\"", "\"family\":\"martian-"),
        "family");
}

TEST(SynthFuzz, MissingSectionsFailWithNamedErrors)
{
    const std::string &doc = baseDocument();
    // Renaming a required section is equivalent to deleting it (the
    // loader skips unknown keys), so each must fail by name.
    expectNamedFailure(
        replaceOnce(doc, "\"temporal\":", "\"temporalX\":"), "temporal");
    expectNamedFailure(replaceOnce(doc, "\"spatial\":", "\"spatialX\":"),
                       "spatial");
    expectNamedFailure(replaceOnce(doc, "\"volume\":", "\"volumeX\":"),
                       "volume");
    expectNamedFailure(
        replaceOnce(doc, "\"mesh\":", "\"meshX\":"), "mesh");
    expectNamedFailure(replaceOnce(doc, "\"perSourceCounts\":",
                                   "\"perSourceCountsX\":"),
                       "perSourceCounts");
}

TEST(SynthFuzz, HostileSizesAreRangeCheckedBeforeAllocation)
{
    const std::string &doc = baseDocument();
    // A multi-billion-node board must be rejected up front, not
    // "honoured" with a giant allocation or an endless generation.
    expectParseErrorOrSuccess(
        replaceOnce(doc, "\"mesh\":{\"width\":4",
                    "\"mesh\":{\"width\":2000000000"),
        "huge width");
    expectParseErrorOrSuccess(
        replaceOnce(doc, "\"nprocs\":16",
                    "\"nprocs\":99999999999999999999"),
        "overflowing nprocs");
    expectParseErrorOrSuccess(
        replaceOnce(doc, "\"mesh\":{\"width\":4",
                    "\"mesh\":{\"width\":-4"),
        "negative width");
}

TEST(SynthFuzz, DeepNestingIsBounded)
{
    // An unknown key whose value nests 10k arrays must trip the depth
    // guard in skipValue, not the process stack.
    std::string doc = "{\"application\":\"x\",\"junk\":";
    for (int i = 0; i < 10000; ++i)
        doc += '[';
    for (int i = 0; i < 10000; ++i)
        doc += ']';
    doc += "}";
    expectParseErrorOrSuccess(doc, "deep nesting");
}

TEST(SynthFuzz, TrailingContentIsRejected)
{
    expectNamedFailure(baseDocument() + "extra", "trailing");
}

} // namespace
