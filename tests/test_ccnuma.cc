/**
 * @file
 * Unit and property tests for the CC-NUMA machine: cache behaviour,
 * directory protocol transitions, value correctness under sharing,
 * synchronization, and traffic generation.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ccnuma/machine.hh"
#include "stats/rng.hh"

namespace {

using namespace cchar;
using namespace cchar::ccnuma;
using desim::Simulator;
using desim::Task;

MachineConfig
smallMachine(int width = 2, int height = 2)
{
    MachineConfig cfg;
    cfg.mesh.width = width;
    cfg.mesh.height = height;
    cfg.cache.lines = 64;
    cfg.cache.assoc = 4;
    cfg.cache.lineBytes = 32;
    return cfg;
}

// --------------------------------------------------------------------
// Cache unit tests

TEST(Cache, HitAfterInsert)
{
    Cache c{CacheConfig{64, 4, 32}};
    c.insert(0x100, LineState::Shared, 7);
    auto *line = c.lookup(0x100);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->value, 7u);
    EXPECT_EQ(line->state, LineState::Shared);
    EXPECT_EQ(c.lookup(0x200), nullptr);
}

TEST(Cache, LruVictimSelection)
{
    // Directly map into one set: addresses that differ by
    // sets*lineBytes collide.
    Cache c{CacheConfig{16, 2, 32}}; // 8 sets, 2 ways
    Addr stride = 8 * 32;
    c.insert(0 * stride, LineState::Shared, 0);
    c.insert(1 * stride, LineState::Shared, 1);
    // Touch way 0 so way 1 is LRU.
    (void)c.lookup(0);
    auto victim = c.victimFor(2 * stride);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, stride);
}

TEST(Cache, VictimNulloptWhenFreeWay)
{
    Cache c{CacheConfig{16, 2, 32}};
    c.insert(0x0, LineState::Shared, 0);
    EXPECT_FALSE(c.victimFor(8 * 32).has_value());
}

TEST(Cache, InsertUpdatesInPlace)
{
    Cache c{CacheConfig{16, 2, 32}};
    c.insert(0x0, LineState::Shared, 1);
    c.insert(0x0, LineState::Modified, 2);
    EXPECT_EQ(c.validLines(), 1);
    EXPECT_EQ(c.probe(0x0)->state, LineState::Modified);
    EXPECT_EQ(c.probe(0x0)->value, 2u);
}

TEST(Cache, InvalidConfigRejected)
{
    EXPECT_THROW(Cache(CacheConfig{10, 4, 32}), std::invalid_argument);
    EXPECT_THROW(Cache(CacheConfig{16, 4, 33}), std::invalid_argument);
}

// --------------------------------------------------------------------
// Machine address space

TEST(Machine, InterleavedHomesRotate)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 8, Placement::Interleaved);
    EXPECT_EQ(m.homeOf(base + 0 * 32), 0);
    EXPECT_EQ(m.homeOf(base + 1 * 32), 1);
    EXPECT_EQ(m.homeOf(base + 4 * 32), 0);
    EXPECT_EQ(m.homeOf(base + 7 * 32 + 31), 3);
}

TEST(Machine, BlockedHomesChunk)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 8, Placement::Blocked);
    EXPECT_EQ(m.homeOf(base + 0 * 32), 0);
    EXPECT_EQ(m.homeOf(base + 1 * 32), 0);
    EXPECT_EQ(m.homeOf(base + 2 * 32), 1);
    EXPECT_EQ(m.homeOf(base + 7 * 32), 3);
}

TEST(Machine, UnmappedAddressThrows)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    (void)m.allocShared(64);
    EXPECT_THROW(m.homeOf(1 << 20), std::out_of_range);
}

TEST(Machine, TooManyProcessorsRejected)
{
    Simulator sim;
    MachineConfig cfg = smallMachine(9, 8); // 72 > 64
    EXPECT_THROW(Machine(sim, cfg), std::invalid_argument);
}

// --------------------------------------------------------------------
// Protocol behaviour

TEST(Protocol, RemoteReadMissGeneratesRequestReply)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 4, Placement::Interleaved);
    // Address with home 1, read from proc 0.
    Addr a = base + 32;
    m.spawnProcess(0, [](Machine &mach, Addr addr) -> Task<void> {
        ProcContext ctx{mach, 0};
        (void)co_await ctx.read(addr);
    }(m, a));
    m.run();
    // GetS (0->1 control) + Data (1->0 data)
    ASSERT_EQ(m.log().size(), 2u);
    EXPECT_EQ(m.log().records()[0].src, 0);
    EXPECT_EQ(m.log().records()[0].dst, 1);
    EXPECT_EQ(m.log().records()[0].bytes, 8);
    EXPECT_EQ(m.log().records()[1].src, 1);
    EXPECT_EQ(m.log().records()[1].bytes, 40);
    EXPECT_EQ(m.node(1).dirStateOf(m.lineOf(a)), DirState::Shared);
}

TEST(Protocol, LocalAccessGeneratesNoTraffic)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 4, Placement::Interleaved);
    m.spawnProcess(0, [](Machine &mach, Addr addr) -> Task<void> {
        ProcContext ctx{mach, 0};
        (void)co_await ctx.read(addr);       // home 0, local
        co_await ctx.write(addr, 42);        // local upgrade
        (void)co_await ctx.read(addr);       // hit
    }(m, base));
    m.run();
    EXPECT_EQ(m.log().size(), 0u);
}

TEST(Protocol, SecondReadIsACacheHit)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 4);
    Addr a = base + 32;
    m.spawnProcess(0, [](Machine &mach, Addr addr) -> Task<void> {
        ProcContext ctx{mach, 0};
        (void)co_await ctx.read(addr);
        (void)co_await ctx.read(addr);
    }(m, a));
    m.run();
    EXPECT_EQ(m.log().size(), 2u); // only the first read misses
    EXPECT_EQ(m.node(0).cache().hits, 1u);
    EXPECT_EQ(m.node(0).cache().misses, 1u);
}

TEST(Protocol, WriteInvalidatesRemoteSharers)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 4);
    Addr a = base + 32; // home 1
    // Readers 0,2,3 then writer 0: expect Inv to 2 and 3.
    m.spawnProcess(0, [](Machine &mach, Addr addr) -> Task<void> {
        ProcContext ctx{mach, 0};
        (void)co_await ctx.read(addr);
        co_await ctx.barrier(0);
        co_await ctx.write(addr, 9);
        co_await ctx.barrier(0);
    }(m, a));
    for (int p = 1; p < 4; ++p) {
        m.spawnProcess(p, [](Machine &mach, int proc,
                             Addr addr) -> Task<void> {
            ProcContext ctx{mach, proc};
            if (proc != 1)
                (void)co_await ctx.read(addr);
            co_await ctx.barrier(0);
            co_await ctx.barrier(0);
        }(m, p, a));
    }
    m.run();
    Addr line = m.lineOf(a);
    EXPECT_EQ(m.node(1).dirStateOf(line), DirState::Modified);
    EXPECT_EQ(m.node(1).dirSharersOf(line), std::uint64_t{1});
    // Count invalidations in the log.
    int invs = 0;
    for (const auto &r : m.log().records()) {
        if (r.kind == trace::MessageKind::Control && r.src == 1 &&
            (r.dst == 2 || r.dst == 3)) {
            ++invs;
        }
    }
    EXPECT_GE(invs, 2); // Inv x2 (plus any GetS replies don't match)
}

TEST(Protocol, ReadAfterRemoteWriteReturnsNewValue)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 4);
    Addr a = base + 3 * 32; // home 3
    std::uint64_t got = 0;
    m.spawnProcess(0, [](Machine &mach, Addr addr) -> Task<void> {
        ProcContext ctx{mach, 0};
        co_await ctx.write(addr, 1234);
        co_await ctx.barrier(0, 2);
    }(m, a));
    m.spawnProcess(1, [](Machine &mach, Addr addr,
                         std::uint64_t &out) -> Task<void> {
        ProcContext ctx{mach, 1};
        co_await ctx.barrier(0, 2);
        out = co_await ctx.read(addr);
    }(m, a, got));
    m.run();
    EXPECT_EQ(got, 1234u);
    EXPECT_EQ(m.node(3).dirStateOf(m.lineOf(a)), DirState::Shared);
}

TEST(Protocol, DirtyEvictionWritesBack)
{
    Simulator sim;
    MachineConfig cfg = smallMachine();
    cfg.cache.lines = 4; // tiny cache: 1 set x 4 ways? keep 4/4
    cfg.cache.assoc = 4;
    Machine m{sim, cfg};
    // 8 lines, all homed at node 1 (line index 4i+1), single set.
    Addr base = m.allocShared(32 * 40, Placement::Interleaved);
    std::uint64_t got = 0;
    m.spawnProcess(0, [](Machine &mach, Addr base_addr,
                         std::uint64_t &out) -> Task<void> {
        ProcContext ctx{mach, 0};
        // Write 8 distinct lines homed remotely; cache holds 4.
        for (int i = 0; i < 8; ++i) {
            Addr a = base_addr + static_cast<Addr>(4 * i + 1) * 32;
            co_await ctx.write(a, 100 + static_cast<std::uint64_t>(i));
        }
        // Re-read the first one; its dirty copy was evicted and must
        // come back from the home's memory.
        out = co_await ctx.read(base_addr + 32);
    }(m, base, got));
    m.run();
    EXPECT_EQ(got, 100u);
    // Write-backs (40B data messages 0 -> home) must appear.
    int wbs = 0;
    for (const auto &r : m.log().records()) {
        if (r.src == 0 && r.bytes == 40)
            ++wbs;
    }
    EXPECT_GE(wbs, 4);
}

TEST(Protocol, UpgradeOnSharedCopyIsDataless)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 4);
    Addr a = base + 32; // home 1
    m.spawnProcess(0, [](Machine &mach, Addr addr) -> Task<void> {
        ProcContext ctx{mach, 0};
        (void)co_await ctx.read(addr); // S copy
        co_await ctx.write(addr, 5);   // upgrade
    }(m, a));
    m.run();
    // GetS + Data + Upgrade + Ack: the Ack is a control message.
    ASSERT_EQ(m.log().size(), 4u);
    EXPECT_EQ(m.log().records()[2].bytes, 8);  // Upgrade
    EXPECT_EQ(m.log().records()[3].bytes, 8);  // Ack (no data)
}

TEST(Protocol, ModifiedRecallOnRemoteRead)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32 * 4);
    Addr a = base + 2 * 32; // home 2
    std::uint64_t got = 0;
    m.spawnProcess(0, [](Machine &mach, Addr addr) -> Task<void> {
        ProcContext ctx{mach, 0};
        co_await ctx.write(addr, 77); // M at node 0
        co_await ctx.barrier(0, 2);
        co_await ctx.barrier(1, 2);
    }(m, a));
    m.spawnProcess(1, [](Machine &mach, Addr addr,
                         std::uint64_t &out) -> Task<void> {
        ProcContext ctx{mach, 1};
        co_await ctx.barrier(0, 2);
        out = co_await ctx.read(addr); // must Fetch from node 0
        co_await ctx.barrier(1, 2);
    }(m, a, got));
    m.run();
    EXPECT_EQ(got, 77u);
    Addr line = m.lineOf(a);
    EXPECT_EQ(m.node(2).dirStateOf(line), DirState::Shared);
    // Sharers: nodes 0 and 1.
    EXPECT_EQ(m.node(2).dirSharersOf(line), std::uint64_t{0b11});
}

// --------------------------------------------------------------------
// Synchronization

TEST(Sync, LockProvidesMutualExclusion)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    (void)m.allocShared(64);
    int inside = 0, maxInside = 0, entries = 0;
    for (int p = 0; p < 4; ++p) {
        m.spawnProcess(p, [](Machine &mach, int proc, int &in, int &mx,
                             int &cnt) -> Task<void> {
            ProcContext ctx{mach, proc};
            for (int round = 0; round < 5; ++round) {
                co_await ctx.lock(3);
                ++in;
                mx = std::max(mx, in);
                ++cnt;
                co_await ctx.compute(0.5);
                --in;
                co_await ctx.unlock(3);
                co_await ctx.compute(0.1 * proc);
            }
        }(m, p, inside, maxInside, entries));
    }
    m.run();
    EXPECT_EQ(maxInside, 1);
    EXPECT_EQ(entries, 20);
}

TEST(Sync, BarrierSynchronizesAllProcessors)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    (void)m.allocShared(64);
    std::vector<double> releaseTimes(4, -1.0);
    for (int p = 0; p < 4; ++p) {
        m.spawnProcess(p, [](Machine &mach, int proc,
                             std::vector<double> &ts) -> Task<void> {
            ProcContext ctx{mach, proc};
            co_await ctx.compute(10.0 * proc); // staggered arrival
            co_await ctx.barrier(0);
            ts[static_cast<std::size_t>(proc)] = mach.sim().now();
        }(m, p, releaseTimes));
    }
    m.run();
    // Nobody passes before the last arrival at t = 30.
    for (double t : releaseTimes)
        EXPECT_GE(t, 30.0);
}

TEST(Sync, BarrierIsReusable)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    (void)m.allocShared(64);
    int phase = 0;
    bool ok = true;
    for (int p = 0; p < 4; ++p) {
        m.spawnProcess(p, [](Machine &mach, int proc, int &ph,
                             bool &good) -> Task<void> {
            ProcContext ctx{mach, proc};
            for (int round = 0; round < 10; ++round) {
                if (proc == 0)
                    ++ph;
                co_await ctx.barrier(0);
                if (ph != round + 1)
                    good = false;
                co_await ctx.barrier(0);
            }
        }(m, p, phase, ok));
    }
    m.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(phase, 10);
}

TEST(Sync, ContendedLockIsFifoFair)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    (void)m.allocShared(64);
    std::vector<int> order;
    for (int p = 0; p < 4; ++p) {
        m.spawnProcess(p, [](Machine &mach, int proc,
                             std::vector<int> &ord) -> Task<void> {
            ProcContext ctx{mach, proc};
            co_await ctx.compute(1.0 * proc); // deterministic arrival
            co_await ctx.lock(0);
            ord.push_back(proc);
            co_await ctx.compute(10.0);
            co_await ctx.unlock(0);
        }(m, p, order));
    }
    m.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// --------------------------------------------------------------------
// SharedArray

TEST(SharedArrayApi, TimedAccessUpdatesNativeStorage)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    SharedArray<double> arr{m, 64};
    m.spawnProcess(0, [](Machine &mach,
                         SharedArray<double> &a) -> Task<void> {
        ProcContext ctx{mach, 0};
        co_await a.put(ctx, 5, 2.5);
        double v = co_await a.get(ctx, 5);
        a[6] = v * 2.0;
    }(m, arr));
    m.run();
    EXPECT_DOUBLE_EQ(arr[5], 2.5);
    EXPECT_DOUBLE_EQ(arr[6], 5.0);
}

// --------------------------------------------------------------------
// Property test: sequential consistency of values under random sharing

TEST(ProtocolProperty, RandomWorkloadValueCorrectness)
{
    // Four processors hammer a small set of lines with random reads
    // and writes, synchronizing with a lock per line. Under mutual
    // exclusion, every read must observe the last value written to
    // that line (tracked in a native shadow map).
    Simulator sim;
    MachineConfig cfg = smallMachine();
    cfg.cache.lines = 8; // tiny: force evictions and recalls
    cfg.cache.assoc = 2;
    Machine m{sim, cfg};
    Addr base = m.allocShared(32 * 16, Placement::Interleaved);

    std::map<Addr, std::uint64_t> shadow;
    for (int i = 0; i < 16; ++i)
        shadow[base + static_cast<Addr>(i) * 32] = 0;
    bool ok = true;
    std::uint64_t nextValue = 1;

    for (int p = 0; p < 4; ++p) {
        m.spawnProcess(p, [](Machine &mach, int proc, Addr base_addr,
                             std::map<Addr, std::uint64_t> &truth,
                             bool &good,
                             std::uint64_t &next) -> Task<void> {
            ProcContext ctx{mach, proc};
            stats::Rng rng{static_cast<std::uint64_t>(proc) * 977 + 13};
            for (int step = 0; step < 200; ++step) {
                int lineIdx = static_cast<int>(rng.below(16));
                Addr a =
                    base_addr + static_cast<Addr>(lineIdx) * 32;
                co_await ctx.lock(lineIdx);
                if (rng.chance(0.5)) {
                    std::uint64_t v = next++;
                    truth[a] = v;
                    co_await ctx.write(a, v);
                } else {
                    std::uint64_t v = co_await ctx.read(a);
                    // A line never written yet reads the directory's
                    // initial zero.
                    if (v != truth[a])
                        good = false;
                }
                co_await ctx.unlock(lineIdx);
                co_await ctx.compute(rng.uniform(0.0, 0.3));
            }
        }(m, p, base, shadow, ok, nextValue));
    }
    m.run();
    EXPECT_TRUE(ok);
    EXPECT_GT(m.log().size(), 100u);
}

TEST(ProtocolProperty, DeterministicTrafficAcrossRuns)
{
    auto runOnce = [] {
        Simulator sim;
        Machine m{sim, smallMachine()};
        Addr base = m.allocShared(32 * 32, Placement::Interleaved);
        for (int p = 0; p < 4; ++p) {
            m.spawnProcess(p, [](Machine &mach, int proc,
                                 Addr base_addr) -> Task<void> {
                ProcContext ctx{mach, proc};
                stats::Rng rng{static_cast<std::uint64_t>(proc) + 5};
                for (int i = 0; i < 100; ++i) {
                    Addr a = base_addr +
                             static_cast<Addr>(rng.below(32)) * 32;
                    if (rng.chance(0.3))
                        co_await ctx.write(a, rng.raw());
                    else
                        (void)co_await ctx.read(a);
                }
            }(m, p, base));
        }
        m.run();
        std::vector<double> sig;
        for (const auto &r : m.log().records()) {
            sig.push_back(r.injectTime);
            sig.push_back(r.src * 1000.0 + r.dst * 10.0 + r.bytes);
        }
        return sig;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(ProtocolProperty, FalseSharingStyleMigrationDrains)
{
    // Ping-pong a single line between all processors many times; the
    // line migrates M->M. Checks liveness and final value.
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocShared(32);
    std::uint64_t final = 0;
    for (int p = 0; p < 4; ++p) {
        m.spawnProcess(p, [](Machine &mach, int proc, Addr addr,
                             std::uint64_t &out) -> Task<void> {
            ProcContext ctx{mach, proc};
            for (int round = 0; round < 25; ++round) {
                co_await ctx.lock(0);
                std::uint64_t v = co_await ctx.read(addr);
                co_await ctx.write(addr, v + 1);
                co_await ctx.unlock(0);
            }
            co_await ctx.barrier(0);
            if (proc == 0)
                out = co_await ctx.read(addr);
        }(m, p, base, final));
    }
    m.run();
    EXPECT_EQ(final, 100u);
}

} // namespace

// --------------------------------------------------------------------
// Torus machine integration (extension test)

namespace {

TEST(MachineTorus, FullProtocolRunsOnTorus)
{
    Simulator sim;
    MachineConfig cfg = smallMachine();
    cfg.mesh.topology = cchar::mesh::Topology::Torus;
    cfg.mesh.virtualChannels = 2;
    Machine m{sim, cfg};
    Addr base = m.allocShared(32 * 16, Placement::Interleaved);
    for (int p = 0; p < 4; ++p) {
        m.spawnProcess(p, [](Machine &mach, int proc,
                             Addr base_addr) -> Task<void> {
            ProcContext ctx{mach, proc};
            cchar::stats::Rng rng{static_cast<std::uint64_t>(proc) + 1};
            for (int i = 0; i < 100; ++i) {
                Addr a = base_addr +
                         static_cast<Addr>(rng.below(16)) * 32;
                if (rng.chance(0.4))
                    co_await ctx.write(a, rng.raw());
                else
                    (void)co_await ctx.read(a);
            }
            co_await ctx.barrier(0);
        }(m, p, base));
    }
    m.run();
    EXPECT_GT(m.log().size(), 50u);
}

} // namespace

// --------------------------------------------------------------------
// Fixed-node placement (extension tests)

namespace {

TEST(Machine, FixedNodePlacementHomesEverythingAtOneNode)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocSharedAt(32 * 12, 2);
    for (int line = 0; line < 12; ++line)
        EXPECT_EQ(m.homeOf(base + static_cast<Addr>(line) * 32), 2);
    EXPECT_THROW(m.allocSharedAt(64, 99), std::invalid_argument);
}

TEST(Machine, FixedPlacementDirectsTraffic)
{
    Simulator sim;
    Machine m{sim, smallMachine()};
    Addr base = m.allocSharedAt(32 * 4, 3);
    m.spawnProcess(0, [](Machine &mach, Addr addr) -> Task<void> {
        ProcContext ctx{mach, 0};
        for (int i = 0; i < 4; ++i)
            (void)co_await ctx.read(addr + static_cast<Addr>(i) * 32);
    }(m, base));
    m.run();
    // All request traffic targets node 3.
    for (const auto &rec : m.log().records()) {
        if (rec.src == 0) {
            EXPECT_EQ(rec.dst, 3);
        }
    }
    EXPECT_EQ(m.log().size(), 8u); // 4 GetS + 4 Data
}

} // namespace
