/**
 * @file
 * End-to-end tests of the characterization pipeline: dynamic and
 * static strategies, trace replay, report content, synthetic traffic
 * generation and model validation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/fft1d.hh"
#include "apps/fft3d.hh"
#include "apps/is.hh"
#include "apps/mg.hh"
#include "core/core.hh"

namespace {

using namespace cchar;
using namespace cchar::core;

ccnuma::MachineConfig
machine4x4()
{
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    return cfg;
}

mp::MpConfig
world8()
{
    mp::MpConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 2;
    return cfg;
}

// --------------------------------------------------------------------
// Dynamic strategy end to end

TEST(PipelineDynamic, CharacterizesFft1D)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());

    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.application, "1d-fft");
    EXPECT_EQ(report.strategy, Strategy::Dynamic);
    EXPECT_EQ(report.nprocs, 16);
    EXPECT_GT(report.volume.messageCount, 100u);
    ASSERT_TRUE(report.temporalAggregate.fit.dist);
    EXPECT_GT(report.temporalAggregate.fit.gof.r2, 0.8);
    EXPECT_GT(report.temporalAggregate.stats.mean, 0.0);
    EXPECT_FALSE(report.spatialPerSource.empty());
    EXPECT_FALSE(report.hopDistancePmf.empty());
    EXPECT_GT(report.network.latencyMean, 0.0);
    EXPECT_GT(report.network.makespan, 0.0);
    // Length PMF: control (8B) and data (40B) message classes.
    ASSERT_EQ(report.volume.lengthPmf.size(), 2u);
    EXPECT_EQ(report.volume.lengthPmf[0].first, 8);
    EXPECT_EQ(report.volume.lengthPmf[1].first, 40);
}

TEST(PipelineDynamic, IsShowsFavoriteProcessorPattern)
{
    apps::IntegerSort::Params p;
    p.n = 512;
    p.buckets = 16;
    apps::IntegerSort app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    EXPECT_TRUE(report.verified);
    // Most non-zero sources must classify with favorite p0 (bimodal
    // or at least have p0 as their most frequent destination).
    int p0Favored = 0, classified = 0;
    for (const auto &sf : report.spatialPerSource) {
        if (sf.source == 0)
            continue;
        ++classified;
        if (sf.observed.argmax() == 0)
            ++p0Favored;
    }
    EXPECT_GE(p0Favored, classified * 2 / 3);
}

// --------------------------------------------------------------------
// Static strategy end to end

TEST(PipelineStatic, CharacterizesFft3D)
{
    apps::Fft3D::Params p;
    p.nx = p.ny = p.nz = 8;
    p.iterations = 2;
    apps::Fft3D app{p};
    CharacterizationPipeline pipeline;
    trace::Trace collected;
    auto report = pipeline.runStatic(app, world8(), &collected);

    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.strategy, Strategy::Static);
    EXPECT_EQ(report.nprocs, 8);
    EXPECT_GT(collected.size(), 50u);
    // The replayed log carries exactly the traced messages.
    EXPECT_EQ(report.volume.messageCount, collected.size());
    ASSERT_TRUE(report.temporalAggregate.fit.dist);
}

TEST(PipelineStatic, MgNeighbourPatternSurvivesReplay)
{
    apps::Multigrid::Params p;
    p.n = 16;
    p.levels = 3;
    p.vCycles = 1;
    apps::Multigrid app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runStatic(app, world8());
    EXPECT_TRUE(report.verified);
    // Locality: hop distance 1 well represented.
    ASSERT_GT(report.hopDistancePmf.size(), 1u);
    EXPECT_GT(report.hopDistancePmf[1], 0.2);
}

// --------------------------------------------------------------------
// Trace replay

TEST(Replay, PreservesPerSourceOrderAndGaps)
{
    trace::Trace t{4};
    t.add({0, 1, 64, trace::MessageKind::Data, 10.0});
    t.add({0, 2, 64, trace::MessageKind::Data, 5.0});
    t.add({1, 3, 32, trace::MessageKind::Data, 2.0});
    mesh::MeshConfig mesh;
    mesh.width = 2;
    mesh.height = 2;
    auto result = TraceReplayer::replay(t, mesh);
    ASSERT_EQ(result.log.size(), 3u);
    // Source 0's first message injects at t=10.
    const auto &recs = result.log.records();
    double inj0first = -1.0, inj0second = -1.0;
    for (const auto &r : recs) {
        if (r.src == 0 && r.dst == 1)
            inj0first = r.injectTime;
        if (r.src == 0 && r.dst == 2)
            inj0second = r.injectTime;
    }
    EXPECT_DOUBLE_EQ(inj0first, 10.0);
    // Second message: 5us after the first completed.
    EXPECT_GT(inj0second, inj0first + 5.0 - 1e-9);
}

TEST(Replay, OpenLoopInjectsWithoutWaiting)
{
    trace::Trace t{2};
    for (int i = 0; i < 10; ++i)
        t.add({0, 1, 4096, trace::MessageKind::Data, 0.1});
    mesh::MeshConfig mesh;
    mesh.width = 2;
    mesh.height = 1;
    auto blocking = TraceReplayer::replay(t, mesh, true);
    auto open = TraceReplayer::replay(t, mesh, false);
    // Open loop: all injections near t=i*0.1; blocking: spaced by
    // message service time.
    EXPECT_LT(open.log.records().back().injectTime,
              blocking.log.records().back().injectTime);
    EXPECT_GT(open.contentionMean, blocking.contentionMean);
}

TEST(Replay, RejectsOversizedTrace)
{
    trace::Trace t{16};
    t.add({0, 15, 8, trace::MessageKind::Data, 0.0});
    mesh::MeshConfig mesh;
    mesh.width = 2;
    mesh.height = 2;
    EXPECT_THROW(TraceReplayer::replay(t, mesh), std::invalid_argument);
}

// --------------------------------------------------------------------
// Report rendering

TEST(Report, PrintContainsAllSections)
{
    apps::Fft1D::Params p;
    p.n = 64;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    auto report = pipeline.runDynamic(app, cfg);
    std::ostringstream os;
    report.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("Temporal attribute"), std::string::npos);
    EXPECT_NE(text.find("Spatial attribute"), std::string::npos);
    EXPECT_NE(text.find("Volume attribute"), std::string::npos);
    EXPECT_NE(text.find("Network behaviour"), std::string::npos);
    EXPECT_NE(text.find("1d-fft"), std::string::npos);
    EXPECT_FALSE(report.summaryRow().empty());
}

// --------------------------------------------------------------------
// Synthetic traffic and validation

TEST(Synthetic, ModelFromReportCoversActiveSources)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    auto model = SyntheticModel::fromReport(report);
    EXPECT_EQ(model.nprocs, 16);
    EXPECT_FALSE(model.sources.empty());
    for (const auto &sm : model.sources) {
        EXPECT_TRUE(sm.interArrival);
        EXPECT_GT(sm.messageCount, 0u);
        EXPECT_EQ(sm.destination.size(), 16u);
    }
    EXPECT_FALSE(model.lengthPmf.empty());
}

TEST(Synthetic, GeneratorReproducesMessageCounts)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    auto model = SyntheticModel::fromReport(report);
    auto synth = SyntheticTrafficGenerator::run(model, 5);
    std::size_t expected = 0;
    for (const auto &sm : model.sources)
        expected += sm.messageCount;
    EXPECT_EQ(synth.log.size(), expected);
    EXPECT_GT(synth.latencyMean, 0.0);
}

TEST(Synthetic, ValidationLatencyWithinFactorTwo)
{
    // The methodology claim: fitted distributions reproduce the
    // network behaviour of the original traffic to first order.
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    auto v = validateModel(report, 11);
    EXPECT_GT(v.syntheticLatencyMean, 0.0);
    EXPECT_LT(std::abs(v.latencyError()), 1.0);
}

TEST(Synthetic, DeterministicGivenSeed)
{
    apps::IntegerSort::Params p;
    p.n = 256;
    p.buckets = 8;
    apps::IntegerSort app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    auto model1 = SyntheticModel::fromReport(report);
    auto model2 = SyntheticModel::fromReport(report);
    auto a = SyntheticTrafficGenerator::run(model1, 9);
    auto b = SyntheticTrafficGenerator::run(model2, 9);
    ASSERT_EQ(a.log.size(), b.log.size());
    EXPECT_DOUBLE_EQ(a.latencyMean, b.latencyMean);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

} // namespace

// --------------------------------------------------------------------
// Per-kind breakdown and structured pattern integration
// (appended extension tests)

namespace {

TEST(ReportExtensions, PerKindBreakdownPresent)
{
    apps::IntegerSort::Params p;
    p.n = 256;
    p.buckets = 8;
    apps::IntegerSort app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    ASSERT_FALSE(report.perKind.empty());
    std::size_t sum = 0;
    bool sawSync = false, sawData = false;
    for (const auto &kb : report.perKind) {
        sum += kb.volume.messageCount;
        if (kb.kind == trace::MessageKind::Sync)
            sawSync = true;
        if (kb.kind == trace::MessageKind::Data)
            sawData = true;
    }
    EXPECT_EQ(sum, report.volume.messageCount);
    EXPECT_TRUE(sawSync); // lock/barrier traffic
    EXPECT_TRUE(sawData); // line transfers
}

TEST(ReportExtensions, StructuredPatternFieldFilled)
{
    apps::IntegerSort::Params p;
    p.n = 256;
    p.buckets = 8;
    apps::IntegerSort app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    // IS converges on processor 0: the structural explanation is a
    // hot spot at node 0 (or at least a reported coverage).
    EXPECT_FALSE(report.structured.alternatives.empty());
    if (report.structured.pattern == StructuredPattern::HotSpot) {
        EXPECT_EQ(report.structured.parameter, 0);
    }
}

TEST(SyntheticExtensions, TimeScaleCompressesSchedule)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    auto m1 = SyntheticModel::fromReport(report);
    auto m2 = SyntheticModel::fromReport(report);
    auto normal = SyntheticTrafficGenerator::run(m1, 3, 1.0);
    auto loaded = SyntheticTrafficGenerator::run(m2, 3, 0.25);
    EXPECT_LT(loaded.makespan, normal.makespan);
    EXPECT_GE(loaded.contentionMean, normal.contentionMean);
}

} // namespace

// --------------------------------------------------------------------
// Windowed (phase) temporal analysis (extension tests)

namespace {

TEST(WindowedAnalysis, CoversWholeRunAndCountsAllMessages)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    desim::Simulator sim;
    ccnuma::Machine machine{sim, machine4x4()};
    apps::launch(machine, app);
    machine.run();

    TemporalAnalyzer analyzer;
    auto windows = analyzer.analyzeWindows(machine.log(), 6);
    ASSERT_EQ(windows.size(), 6u);
    // Each window's gap count is (messages in window - 1); total
    // messages across windows equals the log size.
    std::size_t msgs = 0;
    for (const auto &w : windows)
        msgs += w.stats.count + (w.stats.count > 0 ? 1 : 0);
    EXPECT_LE(msgs, machine.log().size() + 6);
    EXPECT_GE(msgs, machine.log().size() / 2);
}

TEST(WindowedAnalysis, DetectsRateVariationAcrossPhases)
{
    // 1D-FFT alternates local stages (only barrier traffic) and
    // remote stages (heavy coherence traffic): windowed rates differ
    // by a large factor.
    apps::Fft1D::Params p;
    p.n = 256;
    apps::Fft1D app{p};
    desim::Simulator sim;
    ccnuma::Machine machine{sim, machine4x4()};
    apps::launch(machine, app);
    machine.run();

    TemporalAnalyzer analyzer;
    auto windows = analyzer.analyzeWindows(machine.log(), 8);
    double lo = 1e300, hi = 0.0;
    for (const auto &w : windows) {
        if (w.stats.count < 4)
            continue;
        double rate = 1.0 / w.stats.mean;
        lo = std::min(lo, rate);
        hi = std::max(hi, rate);
    }
    EXPECT_GT(hi, 2.0 * lo);
}

TEST(WindowedAnalysis, EmptyLogYieldsNoWindows)
{
    trace::TrafficLog log{4};
    TemporalAnalyzer analyzer;
    EXPECT_TRUE(analyzer.analyzeWindows(log, 4).empty());
}

} // namespace

// --------------------------------------------------------------------
// Paced synthetic injection (extension tests)

namespace {

TEST(SyntheticExtensions, PacedInjectionBoundsQueueing)
{
    apps::IntegerSort::Params p;
    p.n = 512;
    p.buckets = 16;
    apps::IntegerSort app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    auto mOpen = SyntheticModel::fromReport(report);
    auto mPaced = SyntheticModel::fromReport(report);
    auto open = SyntheticTrafficGenerator::run(mOpen, 7, 1.0, 0);
    auto paced = SyntheticTrafficGenerator::run(mPaced, 7, 1.0, 2);
    EXPECT_EQ(open.log.size(), paced.log.size());
    // Bounded outstanding messages can only lower queueing delays.
    EXPECT_LE(paced.contentionMean, open.contentionMean + 1e-9);
}

TEST(SyntheticExtensions, ValidateModelPacedVariant)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    auto v = validateModel(report, 3, 2);
    EXPECT_GT(v.syntheticLatencyMean, 0.0);
    EXPECT_LT(std::abs(v.latencyError()), 1.0);
}

} // namespace

// --------------------------------------------------------------------
// JSON export (extension tests)

namespace {

TEST(ReportJson, ContainsAllSectionsAndBalancedBraces)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    std::ostringstream os;
    report.writeJson(os);
    std::string json = os.str();
    for (const char *key :
         {"\"application\"", "\"temporal\"", "\"spatial\"",
          "\"volume\"", "\"network\"", "\"perSource\"",
          "\"hopDistancePmf\"", "\"lengthPmf\"", "\"verified\":true"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    int depth = 0;
    bool inString = false;
    char prev = 0;
    for (char c : json) {
        if (c == '"' && prev != '\\')
            inString = !inString;
        if (!inString) {
            if (c == '{' || c == '[')
                ++depth;
            if (c == '}' || c == ']')
                --depth;
            EXPECT_GE(depth, 0);
        }
        prev = c;
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
