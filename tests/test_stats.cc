/**
 * @file
 * Unit and property tests for the statistical analysis library.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/stats.hh"

namespace {

using namespace cchar::stats;

std::vector<double>
sampleFrom(const Distribution &d, std::size_t n, std::uint64_t seed)
{
    Rng rng{seed};
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = d.sample(rng);
    return xs;
}

// --------------------------------------------------------------------
// Special functions

TEST(Special, RegularizedGammaKnownValues)
{
    // P(1, x) = 1 - e^-x
    for (double x : {0.1, 0.5, 1.0, 3.0, 10.0})
        EXPECT_NEAR(regularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
    // P(a, 0) = 0; P(a, inf) -> 1
    EXPECT_DOUBLE_EQ(regularizedGammaP(2.5, 0.0), 0.0);
    EXPECT_NEAR(regularizedGammaP(2.5, 200.0), 1.0, 1e-12);
    // P(2, x) = 1 - e^-x (1 + x)
    EXPECT_NEAR(regularizedGammaP(2.0, 1.5),
                1.0 - std::exp(-1.5) * 2.5, 1e-10);
}

TEST(Special, NormalCdfSymmetry)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0) + normalCdf(-1.0), 1.0, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
}

// --------------------------------------------------------------------
// Summary

TEST(Summary, MomentsOfKnownSample)
{
    std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto s = SummaryStats::compute(xs);
    EXPECT_EQ(s.count, 10u);
    EXPECT_DOUBLE_EQ(s.mean, 5.5);
    EXPECT_NEAR(s.variance, 8.25, 1e-12);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 10.0);
    EXPECT_DOUBLE_EQ(s.median, 5.5);
    EXPECT_NEAR(s.skewness, 0.0, 1e-12);
}

TEST(Summary, EmptySampleIsZeroed)
{
    auto s = SummaryStats::compute(std::vector<double>{});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Histogram, CountsPartitionTheSample)
{
    std::vector<double> xs;
    Rng rng{11};
    for (int i = 0; i < 1000; ++i)
        xs.push_back(rng.uniform(0.0, 10.0));
    Histogram h{xs, 20};
    std::size_t sum = 0;
    for (const auto &b : h.bins())
        sum += b.count;
    EXPECT_EQ(sum, xs.size());
    EXPECT_EQ(h.bins().size(), 20u);
}

TEST(Ecdf, MonotoneAndBounded)
{
    std::vector<double> xs{5.0, 1.0, 3.0, 3.0, 2.0};
    Ecdf e{xs};
    EXPECT_DOUBLE_EQ(e(0.0), 0.0);
    EXPECT_DOUBLE_EQ(e(1.0), 0.2);
    EXPECT_DOUBLE_EQ(e(3.0), 0.8);
    EXPECT_DOUBLE_EQ(e(100.0), 1.0);
    auto pts = e.regressionPoints(100);
    ASSERT_FALSE(pts.empty());
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_LE(pts[i - 1].first, pts[i].first);
        EXPECT_LT(pts[i - 1].second, pts[i].second);
    }
    EXPECT_GT(pts.front().second, 0.0);
    EXPECT_LT(pts.back().second, 1.0);
}

// --------------------------------------------------------------------
// Distribution properties (parameterized)

class DistributionProperty
    : public ::testing::TestWithParam<std::shared_ptr<Distribution>>
{};

TEST_P(DistributionProperty, CdfIsMonotoneWithinBounds)
{
    const auto &d = *GetParam();
    double prev = -1.0;
    for (double x = 0.0; x <= 50.0; x += 0.25) {
        double f = d.cdf(x);
        EXPECT_GE(f, prev - 1e-12) << d.describe() << " at x=" << x;
        EXPECT_GE(f, -1e-12);
        EXPECT_LE(f, 1.0 + 1e-12);
        prev = f;
    }
}

TEST_P(DistributionProperty, SampleMeanMatchesAnalyticMean)
{
    const auto &d = *GetParam();
    auto xs = sampleFrom(d, 40000, 42);
    auto s = SummaryStats::compute(xs);
    double tol = 0.05 * std::max(std::sqrt(d.variance()), 0.02) + 0.02;
    EXPECT_NEAR(s.mean, d.mean(), 4.0 * tol) << d.describe();
}

TEST_P(DistributionProperty, SampleCdfAgreesWithAnalyticCdf)
{
    const auto &d = *GetParam();
    if (d.name() == "deterministic")
        GTEST_SKIP() << "step CDF has no interior quantiles";
    auto xs = sampleFrom(d, 20000, 7);
    Ecdf e{xs};
    for (double q : {0.25, 0.5, 0.75, 0.9}) {
        // Find approximate quantile from the sample, compare CDFs.
        double x = e.sorted()[static_cast<std::size_t>(
            q * static_cast<double>(xs.size() - 1))];
        EXPECT_NEAR(d.cdf(x), q, 0.02) << d.describe();
    }
}

TEST_P(DistributionProperty, CloneRoundTripsParams)
{
    const auto &d = *GetParam();
    auto c = d.clone();
    EXPECT_EQ(c->name(), d.name());
    EXPECT_EQ(c->params(), d.params());
}

TEST_P(DistributionProperty, PdfIntegratesToCdf)
{
    const auto &d = *GetParam();
    if (d.name() == "deterministic")
        GTEST_SKIP() << "point mass has no proper density";
    // Trapezoidal integration of the pdf should track the cdf.
    double integral = 0.0;
    double dx = 1e-3;
    double prevPdf = d.pdf(0.0);
    for (double x = dx; x <= 20.0; x += dx) {
        double p = d.pdf(x);
        integral += 0.5 * (prevPdf + p) * dx;
        prevPdf = p;
    }
    EXPECT_NEAR(integral, d.cdf(20.0) - d.cdf(0.0), 5e-3) << d.describe();
}

INSTANTIATE_TEST_SUITE_P(
    Families, DistributionProperty,
    ::testing::Values(
        std::make_shared<Exponential>(0.7),
        std::make_shared<ShiftedExponential>(1.5, 0.8),
        std::make_shared<HyperExponential2>(0.3, 2.0, 0.2),
        std::make_shared<Erlang>(3, 1.2),
        std::make_shared<GammaDist>(2.5, 0.9),
        std::make_shared<GammaDist>(0.7, 0.5),
        std::make_shared<Weibull>(1.7, 2.0),
        std::make_shared<Weibull>(0.8, 3.0),
        std::make_shared<LogNormal>(0.5, 0.6),
        std::make_shared<Normal>(8.0, 1.5),
        std::make_shared<UniformDist>(2.0, 6.0),
        std::make_shared<Pareto>(3.0, 1.5),
        std::make_shared<Deterministic>(3.0)),
    [](const auto &info) {
        std::string n = info.param->name();
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n + "_" + std::to_string(info.index);
    });

// --------------------------------------------------------------------
// Moment seeding

TEST(Moments, HyperExponentialRejectsLowCv)
{
    HyperExponential2 h;
    SummaryStats s;
    s.count = 100;
    s.mean = 1.0;
    s.stddev = 0.5;
    s.cv = 0.5;
    s.variance = 0.25;
    EXPECT_FALSE(h.initFromMoments(s));
}

TEST(Moments, ErlangRejectsHighCv)
{
    Erlang e;
    SummaryStats s;
    s.count = 100;
    s.mean = 1.0;
    s.stddev = 2.0;
    s.cv = 2.0;
    s.variance = 4.0;
    EXPECT_FALSE(e.initFromMoments(s));
}

TEST(Moments, WeibullShapeSolverRecoversCv)
{
    // Start from a known Weibull, compute its analytic moments, and
    // check the shape solver lands near the original shape.
    for (double shape : {0.7, 1.0, 1.8, 3.5}) {
        Weibull truth{shape, 2.0};
        SummaryStats s;
        s.count = 1000;
        s.mean = truth.mean();
        s.variance = truth.variance();
        s.stddev = std::sqrt(s.variance);
        s.cv = s.stddev / s.mean;
        Weibull fitted;
        ASSERT_TRUE(fitted.initFromMoments(s));
        EXPECT_NEAR(fitted.shape(), shape, 0.05 * shape + 0.01);
        EXPECT_NEAR(fitted.mean(), truth.mean(), 1e-6);
    }
}

// --------------------------------------------------------------------
// Regression fitting: parameter recovery

TEST(Fit, RecoversExponentialRate)
{
    Exponential truth{0.42};
    auto xs = sampleFrom(truth, 20000, 3);
    DistributionFitter fitter;
    auto res = fitter.fitOne(xs, Exponential{});
    ASSERT_TRUE(res.usable);
    auto *e = dynamic_cast<Exponential *>(res.dist.get());
    ASSERT_NE(e, nullptr);
    EXPECT_NEAR(e->rate(), 0.42, 0.02);
    EXPECT_GT(res.gof.r2, 0.999);
    EXPECT_LT(res.gof.ks, 0.02);
}

TEST(Fit, RecoversHyperExponentialMix)
{
    HyperExponential2 truth{0.25, 5.0, 0.4};
    auto xs = sampleFrom(truth, 30000, 9);
    DistributionFitter fitter;
    auto res = fitter.fitOne(xs, HyperExponential2{});
    ASSERT_TRUE(res.usable);
    EXPECT_GT(res.gof.r2, 0.999);
    EXPECT_LT(res.gof.ks, 0.02);
    EXPECT_NEAR(res.dist->mean(), truth.mean(), 0.1 * truth.mean());
}

TEST(Fit, RecoversWeibullParameters)
{
    Weibull truth{1.6, 3.0};
    auto xs = sampleFrom(truth, 20000, 17);
    DistributionFitter fitter;
    auto res = fitter.fitOne(xs, Weibull{});
    ASSERT_TRUE(res.usable);
    auto *w = dynamic_cast<Weibull *>(res.dist.get());
    ASSERT_NE(w, nullptr);
    EXPECT_NEAR(w->shape(), 1.6, 0.1);
    EXPECT_NEAR(w->scale(), 3.0, 0.15);
}

TEST(Fit, RecoversParetoParameters)
{
    Pareto truth{3.2, 2.0};
    auto xs = sampleFrom(truth, 25000, 61);
    DistributionFitter fitter;
    auto res = fitter.fitOne(xs, Pareto{});
    ASSERT_TRUE(res.usable);
    auto *p = dynamic_cast<Pareto *>(res.dist.get());
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->shape(), 3.2, 0.3);
    EXPECT_NEAR(p->scale(), 2.0, 0.1);
    EXPECT_GT(res.gof.r2, 0.995);
}

TEST(Fit, BestFitSelectsGeneratingFamilyExponential)
{
    Exponential truth{1.3};
    auto xs = sampleFrom(truth, 25000, 5);
    DistributionFitter fitter;
    auto best = fitter.bestFit(xs);
    ASSERT_TRUE(best.usable);
    // Exponential data: the winner must be exponential or an
    // exponential-equivalent parameterization of a superfamily.
    EXPECT_GT(best.gof.r2, 0.999);
    if (best.dist->name() == "gamma") {
        auto *g = dynamic_cast<GammaDist *>(best.dist.get());
        EXPECT_NEAR(g->shape(), 1.0, 0.1);
    } else if (best.dist->name() == "weibull") {
        auto *w = dynamic_cast<Weibull *>(best.dist.get());
        EXPECT_NEAR(w->shape(), 1.0, 0.1);
    } else if (best.dist->name() == "hyperexponential-2") {
        SUCCEED(); // degenerate hyperexponential is exponential-capable
    } else if (best.dist->name() == "shifted-exponential") {
        auto ps = best.dist->params();
        EXPECT_LT(ps[0], 0.1); // shift ~ 0
    } else {
        EXPECT_EQ(best.dist->name(), "exponential");
    }
}

TEST(Fit, BestFitDetectsDeterministicSample)
{
    std::vector<double> xs(500, 7.25);
    DistributionFitter fitter;
    auto best = fitter.bestFit(xs);
    ASSERT_TRUE(best.usable);
    EXPECT_EQ(best.dist->name(), "deterministic");
    EXPECT_NEAR(best.dist->mean(), 7.25, 1e-9);
}

TEST(Fit, BestFitPrefersHyperExponentialForBurstyData)
{
    HyperExponential2 truth{0.15, 10.0, 0.2}; // CV >> 1
    auto xs = sampleFrom(truth, 30000, 21);
    DistributionFitter fitter;
    auto best = fitter.bestFit(xs);
    ASSERT_TRUE(best.usable);
    // Must be a heavy-tailed capable family with excellent fit.
    EXPECT_GT(best.gof.r2, 0.998);
    EXPECT_TRUE(best.dist->name() == "hyperexponential-2" ||
                best.dist->name() == "lognormal" ||
                best.dist->name() == "weibull" ||
                best.dist->name() == "gamma")
        << best.dist->describe();
}

TEST(Fit, SecantMethodMatchesLm)
{
    Weibull truth{1.4, 2.5};
    auto xs = sampleFrom(truth, 15000, 33);
    Ecdf e{xs};
    auto pts = e.regressionPoints(150);

    Weibull lmFit, secFit;
    auto s = SummaryStats::compute(xs);
    ASSERT_TRUE(lmFit.initFromMoments(s));
    ASSERT_TRUE(secFit.initFromMoments(s));

    NonlinearLeastSquares::Options lmOpts;
    lmOpts.method = FitMethod::LevenbergMarquardt;
    NonlinearLeastSquares::Options secOpts;
    secOpts.method = FitMethod::Secant;

    auto lmRes = NonlinearLeastSquares::fitCdf(lmFit, pts, lmOpts);
    auto secRes = NonlinearLeastSquares::fitCdf(secFit, pts, secOpts);
    EXPECT_NEAR(lmFit.shape(), secFit.shape(), 0.05);
    EXPECT_NEAR(lmFit.scale(), secFit.scale(), 0.05);
    EXPECT_NEAR(lmRes.ssr, secRes.ssr, 1e-3);
}

TEST(Fit, EmptyAndTinySamplesAreRejectedGracefully)
{
    DistributionFitter fitter;
    auto none = fitter.fitOne(std::vector<double>{}, Exponential{});
    EXPECT_FALSE(none.usable);
    auto one = fitter.fitOne(std::vector<double>{1.0}, Exponential{});
    EXPECT_FALSE(one.usable);
}

TEST(Fit, FitAllIsSortedBestFirst)
{
    Exponential truth{2.0};
    auto xs = sampleFrom(truth, 5000, 55);
    DistributionFitter fitter;
    auto all = fitter.fitAll(xs);
    ASSERT_GE(all.size(), 5u);
    for (std::size_t i = 1; i < all.size(); ++i) {
        EXPECT_GE(all[i - 1].adjustedR2(xs.size()),
                  all[i].adjustedR2(xs.size()));
    }
}

// --------------------------------------------------------------------
// Spatial classification

TEST(Spatial, PmfNormalizes)
{
    DiscretePmf pmf{{2.0, 2.0, 4.0}};
    EXPECT_NEAR(pmf[0], 0.25, 1e-12);
    EXPECT_NEAR(pmf[2], 0.5, 1e-12);
    EXPECT_EQ(pmf.argmax(), 2);
}

TEST(Spatial, EntropyOfUniformIsLogN)
{
    DiscretePmf pmf{{1.0, 1.0, 1.0, 1.0}};
    EXPECT_NEAR(pmf.entropy(), 2.0, 1e-12);
}

TEST(Spatial, TvdBounds)
{
    DiscretePmf a{{1.0, 0.0}};
    DiscretePmf b{{0.0, 1.0}};
    EXPECT_NEAR(a.tvd(b), 1.0, 1e-12);
    EXPECT_NEAR(a.tvd(a), 0.0, 1e-12);
}

TEST(Spatial, ClassifiesUniform)
{
    // 8 processors, source 0 sends equally to 1..7.
    std::vector<double> counts(8, 100.0);
    counts[0] = 0.0;
    auto cls = SpatialClassifier{}.classify(
        DiscretePmf::fromCounts(counts), 0);
    EXPECT_EQ(cls.pattern, SpatialPattern::Uniform);
    EXPECT_NEAR(cls.restProb, 1.0 / 7.0, 1e-9);
    EXPECT_LT(cls.modelTvd, 1e-9);
}

TEST(Spatial, ClassifiesBimodalUniformFavoriteProcessor)
{
    // The paper's IS / 3D-FFT pattern: p0 gets the maximum share,
    // everyone else an equal share.
    std::vector<double> counts(8, 50.0);
    counts[2] = 0.0;   // source
    counts[0] = 400.0; // favorite
    auto cls = SpatialClassifier{}.classify(
        DiscretePmf::fromCounts(counts), 2);
    EXPECT_EQ(cls.pattern, SpatialPattern::BimodalUniform);
    EXPECT_EQ(cls.favorite, 0);
    EXPECT_GT(cls.favoriteProb, 0.5);
    EXPECT_LT(cls.modelTvd, 1e-9);
}

TEST(Spatial, ClassifiesSingleDestination)
{
    std::vector<double> counts(8, 0.0);
    counts[5] = 990.0;
    counts[1] = 10.0;
    auto cls = SpatialClassifier{}.classify(
        DiscretePmf::fromCounts(counts), 0);
    EXPECT_EQ(cls.pattern, SpatialPattern::SingleDestination);
    EXPECT_EQ(cls.favorite, 5);
}

TEST(Spatial, ClassifiesIrregularAsGeneral)
{
    std::vector<double> counts{0.0, 500.0, 300.0, 5.0, 150.0, 40.0, 3.0,
                               2.0};
    auto cls = SpatialClassifier{}.classify(
        DiscretePmf::fromCounts(counts), 0);
    EXPECT_EQ(cls.pattern, SpatialPattern::General);
}

TEST(Spatial, NoisyUniformStillUniform)
{
    Rng rng{77};
    std::vector<double> counts(16, 0.0);
    for (int i = 0; i < 20000; ++i) {
        std::size_t d = 1 + rng.below(15);
        counts[d] += 1.0;
    }
    auto cls = SpatialClassifier{}.classify(
        DiscretePmf::fromCounts(counts), 0);
    EXPECT_EQ(cls.pattern, SpatialPattern::Uniform);
}

// --------------------------------------------------------------------
// Rng determinism

TEST(Rng, SameSeedSameStream)
{
    Rng a{123}, b{123};
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, Uniform01StaysInRange)
{
    Rng rng{1};
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

} // namespace

// --------------------------------------------------------------------
// Edge cases and goodness-of-fit details (extension tests)

namespace {

TEST(FitEdge, ChiSquareSmallForCorrectModel)
{
    Exponential truth{1.0};
    auto xs = sampleFrom(truth, 20000, 71);
    auto gof = DistributionFitter::evaluate(truth, xs);
    // Chi-square per dof should be O(1) for the generating model.
    EXPECT_GT(gof.chiSquareDof, 1);
    EXPECT_LT(gof.chiSquare / gof.chiSquareDof, 5.0);
}

TEST(FitEdge, ChiSquareLargeForWrongModel)
{
    Exponential truth{1.0};
    auto xs = sampleFrom(truth, 20000, 71);
    UniformDist wrong{0.0, 2.0};
    auto gof = DistributionFitter::evaluate(wrong, xs);
    EXPECT_GT(gof.chiSquare / std::max(gof.chiSquareDof, 1), 50.0);
    EXPECT_GT(gof.ks, 0.1);
}

TEST(FitEdge, RegressionPointsDecimateLargeSamples)
{
    std::vector<double> xs(100000);
    Rng rng{2};
    for (auto &x : xs)
        x = rng.uniform01();
    Ecdf e{xs};
    auto pts = e.regressionPoints(200);
    EXPECT_LE(pts.size(), 201u);
    EXPECT_GE(pts.size(), 150u);
}

TEST(FitEdge, IdenticalValuesFitDeterministic)
{
    std::vector<double> xs(100, 3.0);
    DistributionFitter fitter;
    auto best = fitter.bestFit(xs);
    EXPECT_EQ(best.dist->name(), "deterministic");
    EXPECT_DOUBLE_EQ(best.dist->mean(), 3.0);
    // KS against an atom is ill-defined (the lower-staircase term of
    // the continuous formula hits the jump); R^2 is the meaningful
    // quality measure here.
    EXPECT_DOUBLE_EQ(best.gof.r2, 1.0);
}

TEST(FitEdge, SetParamsClampsIntoFeasibleRegion)
{
    Exponential e{1.0};
    std::vector<double> bad{-5.0};
    e.setParams(bad);
    EXPECT_GT(e.rate(), 0.0);

    HyperExponential2 h;
    std::vector<double> badH{1.5, -1.0, 0.0};
    h.setParams(badH);
    EXPECT_LT(h.mixProbability(), 1.0);
    EXPECT_GT(h.mixProbability(), 0.0);
    EXPECT_GT(h.rate1(), 0.0);
    EXPECT_GT(h.rate2(), 0.0);

    UniformDist u;
    std::vector<double> badU{5.0, 1.0};
    u.setParams(badU);
    EXPECT_GT(u.cdf(1e9), 0.99); // b forced above a
}

TEST(FitEdge, HistogramSingleValueSample)
{
    std::vector<double> xs(50, 7.0);
    Histogram h{xs, 10};
    std::size_t total = 0;
    for (const auto &b : h.bins())
        total += b.count;
    EXPECT_EQ(total, 50u);
}

TEST(SpatialEdge, TwoProcessorSystem)
{
    // Only one possible destination: must classify single-destination.
    std::vector<double> counts{0.0, 42.0};
    auto cls = SpatialClassifier{}.classify(
        DiscretePmf::fromCounts(counts), 0);
    EXPECT_EQ(cls.pattern, SpatialPattern::SingleDestination);
    EXPECT_EQ(cls.favorite, 1);
}

TEST(SpatialEdge, EmptyPmfIsGeneral)
{
    auto cls = SpatialClassifier{}.classify(DiscretePmf{}, 0);
    EXPECT_EQ(cls.pattern, SpatialPattern::General);
}

TEST(SpatialEdge, SampleRespectsDistribution)
{
    DiscretePmf pmf{{0.0, 0.7, 0.3}};
    Rng rng{5};
    int ones = 0, twos = 0;
    for (int i = 0; i < 20000; ++i) {
        int s = pmf.sample(rng);
        if (s == 1)
            ++ones;
        else if (s == 2)
            ++twos;
        else
            FAIL() << "sampled zero-probability category";
    }
    EXPECT_NEAR(ones / 20000.0, 0.7, 0.02);
    EXPECT_NEAR(twos / 20000.0, 0.3, 0.02);
}

TEST(FitEdge, SecantHandlesSingleParameterFamily)
{
    Exponential truth{2.5};
    auto xs = sampleFrom(truth, 10000, 13);
    Ecdf e{xs};
    auto pts = e.regressionPoints(100);
    Exponential fit;
    auto s = SummaryStats::compute(xs);
    ASSERT_TRUE(fit.initFromMoments(s));
    NonlinearLeastSquares::Options opts;
    opts.method = FitMethod::Secant;
    auto res = NonlinearLeastSquares::fitCdf(fit, pts, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(fit.rate(), 2.5, 0.1);
}

} // namespace
