/**
 * @file
 * Tests for the per-rank activity layer: tracker semantics (nesting,
 * finish, capacity caps), the desynchronization analyzer on
 * hand-crafted interval traces with known skew, synthetic idle waves
 * the detector must recover within tolerance, report gating (default
 * outputs carry no rank-activity artifacts), HTML determinism, the
 * flow.dropped metric, and a fault-provoked end-to-end run where a
 * router stall launches a measurable wave.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/analyzers.hh"
#include "core/report.hh"
#include "core/report_html.hh"
#include "obs/obs.hh"
#include "sweep/engine.hh"
#include "sweep/spec.hh"

namespace {

using namespace cchar;
using obs::RankActivityTracker;
using obs::RankState;

/** False when the tree was compiled with -DCCHAR_OBS_DISABLED. */
bool
obsEnabled()
{
    obs::MetricsRegistry probe;
    obs::ScopedObservability scoped{&probe};
    return obs::metrics() != nullptr;
}

// --------------------------------------------------------------------
// Tracker semantics

TEST(RankActivityTracker, NestingCollapsesToOutermost)
{
    RankActivityTracker t;
    t.beginBlocked(0, RankState::BlockedSend, 10.0);
    t.beginBlocked(0, RankState::BlockedRecv, 12.0); // nested
    t.endBlocked(0, 14.0);
    t.endBlocked(0, 20.0);

    ASSERT_EQ(t.ranks(), 1);
    const obs::RankRecord &rec = t.record(0);
    ASSERT_EQ(rec.blocked.size(), 1u);
    EXPECT_DOUBLE_EQ(rec.blocked[0].beginUs, 10.0);
    EXPECT_DOUBLE_EQ(rec.blocked[0].endUs, 20.0);
    EXPECT_EQ(rec.blocked[0].state, RankState::BlockedSend);
}

TEST(RankActivityTracker, FinishClosesOpenIntervals)
{
    RankActivityTracker t;
    t.beginBlocked(2, RankState::BlockedRecv, 5.0);
    t.finish(50.0);

    ASSERT_EQ(t.ranks(), 3);
    const obs::RankRecord &rec = t.record(2);
    ASSERT_EQ(rec.blocked.size(), 1u);
    EXPECT_DOUBLE_EQ(rec.blocked[0].endUs, 50.0);
    EXPECT_DOUBLE_EQ(t.endUs(), 50.0);
}

TEST(RankActivityTracker, UnmatchedEndIsIgnored)
{
    RankActivityTracker t;
    t.endBlocked(0, 10.0); // never began: must not crash or record
    EXPECT_EQ(t.blockedIntervals(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(RankActivityTracker, CapsCountDropped)
{
    RankActivityTracker t{/*maxIntervalsPerRank=*/2,
                          /*maxMarkersPerRank=*/1};
    for (int i = 0; i < 4; ++i) {
        t.beginBlocked(0, RankState::BlockedRecv, 10.0 * i);
        t.endBlocked(0, 10.0 * i + 5.0);
    }
    t.noteMarker(0, 1.0);
    t.noteMarker(0, 2.0);

    EXPECT_EQ(t.blockedIntervals(), 2u);
    EXPECT_EQ(t.record(0).markers.size(), 1u);
    EXPECT_EQ(t.dropped(), 3u); // 2 intervals + 1 marker
}

// --------------------------------------------------------------------
// Analyzer: skew, comm merge, idle fractions

TEST(RankActivityAnalyzer, KnownSkewIsRecovered)
{
    RankActivityTracker t;
    // Marker 0 at 100 + 2r, marker 1 at 200 + 4r across 4 ranks:
    // skews {-3,-1,1,3} then {-6,-2,2,6}.
    for (int r = 0; r < 4; ++r) {
        t.noteMarker(r, 100.0 + 2.0 * r);
        t.noteMarker(r, 200.0 + 4.0 * r);
    }
    t.finish(300.0);

    core::RankActivitySummary s =
        core::RankActivityAnalyzer{}.analyze(t);
    ASSERT_TRUE(s.enabled);
    EXPECT_EQ(s.markerSamples, 2u);
    EXPECT_NEAR(s.maxAbsSkewUs, 6.0, 1e-9);
    ASSERT_EQ(s.ranks.size(), 4u);
    EXPECT_NEAR(s.ranks[0].meanSkewUs, -4.5, 1e-9);
    EXPECT_NEAR(s.ranks[3].meanSkewUs, 4.5, 1e-9);
    EXPECT_NEAR(s.ranks[3].maxAbsSkewUs, 6.0, 1e-9);
}

TEST(RankActivityAnalyzer, SkewUsesMinMarkerCount)
{
    RankActivityTracker t;
    t.noteMarker(0, 100.0);
    t.noteMarker(0, 200.0);
    t.noteMarker(1, 110.0); // rank 1 reached only one barrier
    t.finish(300.0);

    core::RankActivitySummary s =
        core::RankActivityAnalyzer{}.analyze(t);
    EXPECT_EQ(s.markerSamples, 1u);
    EXPECT_NEAR(s.maxAbsSkewUs, 5.0, 1e-9); // {100,110}: skew +-5
}

TEST(RankActivityAnalyzer, OverlappingCommSpansAreMerged)
{
    RankActivityTracker t;
    t.noteComm(0, 0.0, 10.0);
    t.noteComm(0, 5.0, 20.0);  // overlaps the first
    t.noteComm(0, 30.0, 40.0); // disjoint
    t.finish(100.0);

    core::RankActivitySummary s =
        core::RankActivityAnalyzer{}.analyze(t);
    ASSERT_EQ(s.ranks.size(), 1u);
    EXPECT_NEAR(s.ranks[0].commUs, 30.0, 1e-9);
}

TEST(RankActivityAnalyzer, IdleFractionMatchesBlockedShare)
{
    RankActivityTracker t;
    t.beginBlocked(0, RankState::BlockedRecv, 0.0);
    t.endBlocked(0, 50.0);
    t.finish(100.0);

    core::RankActivitySummary s =
        core::RankActivityAnalyzer{}.analyze(t);
    ASSERT_EQ(s.ranks.size(), 1u);
    EXPECT_NEAR(s.ranks[0].idleFraction, 0.5, 1e-9);
    EXPECT_NEAR(s.ranks[0].blockedRecvUs, 50.0, 1e-9);
    EXPECT_NEAR(s.ranks[0].computeUs, 50.0, 1e-9);
}

// --------------------------------------------------------------------
// Analyzer: idle-wave detection

/** One long blocked front per rank, begin = t0 + lag * rank. */
RankActivityTracker
waveTracker(int ranks, double t0, double lag, double duration)
{
    RankActivityTracker t;
    for (int r = 0; r < ranks; ++r) {
        double begin = t0 + lag * r;
        t.beginBlocked(r, RankState::BlockedRecv, begin);
        t.endBlocked(r, begin + duration);
    }
    t.finish(t0 + lag * ranks + duration + 100.0);
    return t;
}

TEST(RankActivityAnalyzer, SyntheticIdleWaveIsRecovered)
{
    // Fronts at 1000 + 50r across 8 ranks: one upward wave, speed
    // (8-1)/(50*7) = 0.02 ranks/us.
    RankActivityTracker t = waveTracker(8, 1000.0, 50.0, 600.0);
    core::RankActivitySummary s =
        core::RankActivityAnalyzer{}.analyze(t);

    ASSERT_EQ(s.waves.size(), 1u);
    const core::IdleWave &w = s.waves[0];
    EXPECT_EQ(w.rankBegin, 0);
    EXPECT_EQ(w.rankEnd, 7);
    EXPECT_EQ(w.extent, 8);
    EXPECT_GT(w.direction, 0);
    EXPECT_NEAR(w.tBeginUs, 1000.0, 1e-9);
    EXPECT_NEAR(w.speedRanksPerUs, 0.02, 0.002);
    EXPECT_EQ(w.phase, -1); // no phase segmentation supplied
}

TEST(RankActivityAnalyzer, DownwardWaveHasNegativeDirection)
{
    RankActivityTracker t;
    for (int r = 0; r < 6; ++r) {
        double begin = 1000.0 + 40.0 * (5 - r); // rank 5 blocks first
        t.beginBlocked(r, RankState::BlockedRecv, begin);
        t.endBlocked(r, begin + 500.0);
    }
    t.finish(2500.0);

    core::RankActivitySummary s =
        core::RankActivityAnalyzer{}.analyze(t);
    ASSERT_EQ(s.waves.size(), 1u);
    EXPECT_LT(s.waves[0].direction, 0);
    EXPECT_EQ(s.waves[0].rankBegin, 5);
    EXPECT_EQ(s.waves[0].rankEnd, 0);
    EXPECT_EQ(s.waves[0].extent, 6);
}

TEST(RankActivityAnalyzer, ShortBlocksDoNotFormWaves)
{
    // Same staggering, but every front is shorter than minBlockedUs.
    RankActivityTracker t = waveTracker(8, 1000.0, 50.0, 100.0);
    core::RankActivitySummary s =
        core::RankActivityAnalyzer{}.analyze(t);
    EXPECT_TRUE(s.waves.empty());
}

TEST(RankActivityAnalyzer, LaggardBeyondMaxLagBreaksTheChain)
{
    core::RankActivityConfig cfg;
    RankActivityTracker t;
    for (int r = 0; r < 6; ++r) {
        // Rank 3 blocks far too late to be part of the front.
        double begin = 1000.0 + 50.0 * r +
                       (r >= 3 ? cfg.maxLagUs * 3.0 : 0.0);
        t.beginBlocked(r, RankState::BlockedRecv, begin);
        t.endBlocked(r, begin + 600.0);
    }
    t.finish(20000.0);

    core::RankActivitySummary s =
        core::RankActivityAnalyzer{cfg}.analyze(t);
    ASSERT_EQ(s.waves.size(), 2u); // ranks 0..2 and 3..5 separately
    EXPECT_EQ(s.waves[0].extent, 3);
    EXPECT_EQ(s.waves[1].extent, 3);
}

// --------------------------------------------------------------------
// Report gating and determinism

core::RankActivitySummary
smallSummary()
{
    RankActivityTracker t = waveTracker(4, 1000.0, 50.0, 600.0);
    for (int r = 0; r < 4; ++r)
        t.noteMarker(r, 2000.0 + r);
    t.finish(2500.0);
    core::RankActivityConfig cfg;
    cfg.minRanks = 3;
    return core::RankActivityAnalyzer{cfg}.analyze(t);
}

TEST(RankActivityReport, DefaultOutputsOmitRankActivity)
{
    core::CharacterizationReport report;
    report.application = "test";

    std::ostringstream text, json, html;
    report.print(text);
    report.writeJson(json);
    core::HtmlReportInputs inputs;
    inputs.report = &report;
    core::writeHtmlReport(html, inputs);

    EXPECT_EQ(text.str().find("Rank activity"), std::string::npos);
    EXPECT_EQ(json.str().find("rankActivity"), std::string::npos);
    EXPECT_EQ(html.str().find("Desynchronization"), std::string::npos);
}

TEST(RankActivityReport, EnabledSummaryAppearsEverywhere)
{
    core::CharacterizationReport report;
    report.application = "test";
    report.rankActivity = smallSummary();
    ASSERT_TRUE(report.rankActivity.enabled);

    std::ostringstream text, json, html;
    report.print(text);
    report.writeJson(json);
    core::HtmlReportInputs inputs;
    inputs.report = &report;
    core::writeHtmlReport(html, inputs);

    EXPECT_NE(text.str().find("Rank activity"), std::string::npos);
    EXPECT_NE(json.str().find("\"rankActivity\""), std::string::npos);
    EXPECT_NE(json.str().find("\"waves\""), std::string::npos);
    EXPECT_NE(html.str().find("Rank activity"), std::string::npos);
    EXPECT_NE(html.str().find("Desynchronization"), std::string::npos);
}

TEST(RankActivityReport, HtmlRendersDeterministically)
{
    core::CharacterizationReport report;
    report.application = "test";
    report.rankActivity = smallSummary();

    core::HtmlReportInputs inputs;
    inputs.report = &report;
    std::ostringstream a, b;
    core::writeHtmlReport(a, inputs);
    core::writeHtmlReport(b, inputs);
    EXPECT_EQ(a.str(), b.str());
}

// --------------------------------------------------------------------
// flow.dropped metric (ring overwrite observability)

TEST(FlowDroppedMetric, RingOverflowIsCounted)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry registry;
    obs::ScopedObservability scope{&registry};
    obs::FlowTracker flows{/*capacity=*/2};

    for (int i = 0; i < 5; ++i) {
        std::uint64_t id = flows.open(0, 0, 1, 64, 1.0 * i);
        flows.onInject(id, 1.0 * i + 0.1);
        flows.onDeliver(id, 1.0 * i + 0.5, 1, 0.0, 0.0);
    }

    EXPECT_EQ(flows.droppedRecords(), 3u);
    EXPECT_EQ(registry.counterValue("flow.dropped"), 3u);

    std::ostringstream json;
    registry.writeJson(json);
    EXPECT_NE(json.str().find("\"flow.dropped\""), std::string::npos);
}

// --------------------------------------------------------------------
// Fault-provoked end-to-end desynchronization

sweep::SweepJob
jobFor(const std::string &app, const std::string &plan)
{
    sweep::SweepJob job;
    job.app = app;
    job.procs = 16;
    sweep::meshFactor(16, job.width, job.height);
    job.faultPlan = plan;
    job.rankActivity = true;
    return job;
}

TEST(RankActivityE2E, FaultFreeSharedMemoryRunHasNoWaves)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry registry;
    sweep::JobOutcome out =
        sweep::SweepEngine::runJob(jobFor("sor", ""), registry);
    ASSERT_TRUE(out.ok()) << out.error;
    EXPECT_EQ(out.idleWaves, 0u);
    EXPECT_GT(out.skewMaxUs, 0.0);       // barriers still skew a little
    EXPECT_GT(out.idleFractionMean, 0.0);
}

TEST(RankActivityE2E, RouterStallLaunchesWave)
{
    if (!obsEnabled())
        GTEST_SKIP() << "compiled with CCHAR_OBS_DISABLED";
    obs::MetricsRegistry healthyReg, faultedReg;
    sweep::JobOutcome healthy =
        sweep::SweepEngine::runJob(jobFor("mg", ""), healthyReg);
    sweep::JobOutcome faulted = sweep::SweepEngine::runJob(
        jobFor("mg", "router:5:stall=300@[5ms,15ms]"), faultedReg);
    ASSERT_TRUE(healthy.ok()) << healthy.error;
    ASSERT_TRUE(faulted.ok()) << faulted.error;

    EXPECT_GT(faulted.idleWaves, 0u);
    EXPECT_GT(faulted.waveSpeedMax, 0.0);
    // The stall visibly desynchronizes the fleet beyond its natural
    // bulk-synchronous skew.
    EXPECT_GT(faulted.skewMaxUs, healthy.skewMaxUs);
    EXPECT_GT(faulted.idleWaves, healthy.idleWaves);
}

} // namespace
