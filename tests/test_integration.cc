/**
 * @file
 * Cross-module integration tests: full-pipeline determinism, the
 * bandwidth profiler, alternative machine shapes for every
 * application, and end-to-end torus runs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/cholesky.hh"
#include "apps/fft1d.hh"
#include "apps/fft3d.hh"
#include "apps/is.hh"
#include "apps/maxflow.hh"
#include "apps/mg.hh"
#include "apps/nbody.hh"
#include "core/core.hh"

namespace {

using namespace cchar;
using namespace cchar::core;

ccnuma::MachineConfig
machineOf(int w, int h)
{
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = w;
    cfg.mesh.height = h;
    return cfg;
}

TEST(Integration, FullPipelineIsDeterministic)
{
    auto runOnce = [] {
        apps::IntegerSort::Params p;
        p.n = 256;
        p.buckets = 8;
        apps::IntegerSort app{p};
        CharacterizationPipeline pipeline;
        return pipeline.runDynamic(app, machineOf(4, 4));
    };
    auto a = runOnce();
    auto b = runOnce();
    EXPECT_EQ(a.volume.messageCount, b.volume.messageCount);
    EXPECT_DOUBLE_EQ(a.temporalAggregate.stats.mean,
                     b.temporalAggregate.stats.mean);
    EXPECT_DOUBLE_EQ(a.network.latencyMean, b.network.latencyMean);
    EXPECT_DOUBLE_EQ(a.network.makespan, b.network.makespan);
    EXPECT_EQ(a.temporalAggregate.fit.dist->name(),
              b.temporalAggregate.fit.dist->name());
}

TEST(Integration, StaticPipelineIsDeterministic)
{
    auto runOnce = [] {
        apps::Fft3D::Params p;
        p.nx = p.ny = p.nz = 8;
        p.iterations = 1;
        apps::Fft3D app{p};
        CharacterizationPipeline pipeline;
        mp::MpConfig cfg;
        cfg.mesh.width = 4;
        cfg.mesh.height = 2;
        return pipeline.runStatic(app, cfg);
    };
    auto a = runOnce();
    auto b = runOnce();
    EXPECT_EQ(a.volume.messageCount, b.volume.messageCount);
    EXPECT_DOUBLE_EQ(a.network.makespan, b.network.makespan);
}

TEST(Integration, AllSharedMemoryAppsRunOn8Processors)
{
    CharacterizationPipeline pipeline;
    auto cfg = machineOf(4, 2);
    std::vector<std::unique_ptr<apps::SharedMemoryApp>> suite;
    {
        apps::Fft1D::Params p;
        p.n = 128;
        suite.push_back(std::make_unique<apps::Fft1D>(p));
    }
    {
        apps::IntegerSort::Params p;
        p.n = 256;
        p.buckets = 8;
        suite.push_back(std::make_unique<apps::IntegerSort>(p));
    }
    {
        apps::SparseCholesky::Params p;
        p.n = 16;
        suite.push_back(std::make_unique<apps::SparseCholesky>(p));
    }
    {
        apps::Maxflow::Params p;
        p.n = 12;
        suite.push_back(std::make_unique<apps::Maxflow>(p));
    }
    {
        apps::Nbody::Params p;
        p.n = 32;
        p.steps = 1;
        suite.push_back(std::make_unique<apps::Nbody>(p));
    }
    for (auto &app : suite) {
        auto report = pipeline.runDynamic(*app, cfg);
        EXPECT_TRUE(report.verified) << app->name();
        EXPECT_GT(report.volume.messageCount, 0u) << app->name();
        EXPECT_EQ(report.nprocs, 8) << app->name();
    }
}

TEST(Integration, DynamicStrategyWorksOnTorus)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    ccnuma::MachineConfig cfg = machineOf(4, 4);
    cfg.mesh.topology = mesh::Topology::Torus;
    cfg.mesh.virtualChannels = 2;
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, cfg);
    EXPECT_TRUE(report.verified);
    // Torus halves the worst-case distance: hop pmf ends earlier.
    double farTraffic = 0.0;
    for (std::size_t h = 5; h < report.hopDistancePmf.size(); ++h)
        farTraffic += report.hopDistancePmf[h];
    EXPECT_DOUBLE_EQ(farTraffic, 0.0);
}

TEST(Integration, BandwidthProfileAccountsAllBytes)
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    desim::Simulator sim;
    ccnuma::Machine machine{sim, machineOf(4, 4)};
    apps::launch(machine, app);
    machine.run();

    auto profile = BandwidthAnalyzer::profile(machine.log(), 10);
    ASSERT_EQ(profile.size(), 10u);
    double end = machine.log().lastDeliverTime();
    double width = end / 10.0;
    double total = 0.0;
    for (double bw : profile)
        total += bw * width;
    double expect = 0.0;
    for (const auto &rec : machine.log().records())
        expect += rec.bytes;
    EXPECT_NEAR(total, expect, 1e-6 * expect);
}

TEST(Integration, BandwidthPerSourceSumsToAggregate)
{
    apps::IntegerSort::Params p;
    p.n = 256;
    p.buckets = 8;
    apps::IntegerSort app{p};
    desim::Simulator sim;
    ccnuma::Machine machine{sim, machineOf(4, 4)};
    apps::launch(machine, app);
    machine.run();

    auto all = BandwidthAnalyzer::profile(machine.log(), 5);
    std::vector<double> sum(5, 0.0);
    for (int src = 0; src < 16; ++src) {
        auto one = BandwidthAnalyzer::profile(machine.log(), 5, src);
        for (std::size_t w = 0; w < one.size(); ++w)
            sum[w] += one[w];
    }
    for (std::size_t w = 0; w < 5; ++w)
        EXPECT_NEAR(sum[w], all[w], 1e-9);
}

TEST(Integration, PeakToMeanDetectsBurstiness)
{
    // A flat profile has ratio 1; bursty traffic > 1.
    EXPECT_DOUBLE_EQ(
        BandwidthAnalyzer::peakToMean({5.0, 5.0, 5.0, 5.0}), 1.0);
    EXPECT_GT(BandwidthAnalyzer::peakToMean({0.0, 20.0, 0.0, 0.0}),
              3.9);
    EXPECT_DOUBLE_EQ(BandwidthAnalyzer::peakToMean({}), 0.0);
}

TEST(Integration, MgAndFft3DRunOn4Ranks)
{
    mp::MpConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    CharacterizationPipeline pipeline;
    {
        apps::Fft3D::Params p;
        p.nx = p.ny = p.nz = 8;
        p.iterations = 1;
        apps::Fft3D app{p};
        auto report = pipeline.runStatic(app, cfg);
        EXPECT_TRUE(report.verified);
        EXPECT_EQ(report.nprocs, 4);
    }
    {
        apps::Multigrid::Params p;
        p.n = 16;
        p.levels = 3;
        p.vCycles = 1;
        apps::Multigrid app{p};
        auto report = pipeline.runStatic(app, cfg);
        EXPECT_TRUE(report.verified);
    }
}

} // namespace
