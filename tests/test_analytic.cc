/**
 * @file
 * Tests for the analytical wormhole mesh model.
 */

#include <gtest/gtest.h>

#include "apps/fft1d.hh"
#include "apps/is.hh"
#include "core/core.hh"

namespace {

using namespace cchar;
using namespace cchar::core;

ccnuma::MachineConfig
machine4x4()
{
    ccnuma::MachineConfig cfg;
    cfg.mesh.width = 4;
    cfg.mesh.height = 4;
    return cfg;
}

CharacterizationReport
fftReport()
{
    apps::Fft1D::Params p;
    p.n = 128;
    apps::Fft1D app{p};
    CharacterizationPipeline pipeline;
    return pipeline.runDynamic(app, machine4x4());
}

TEST(Analytic, ChannelLoadsConserveRoutedTraffic)
{
    auto report = fftReport();
    auto loads = AnalyticMeshModel::channelLoads(report);
    // Sum over channels of lambda_ch equals sum over flows of
    // rate * hops (each hop contributes once).
    double lhs = 0.0;
    for (double l : loads)
        lhs += l;
    double makespan = report.network.makespan;
    double rhs = 0.0;
    for (const auto &sf : report.spatialPerSource) {
        double rate = report.volume.perSourceCounts[static_cast<
                          std::size_t>(sf.source)] /
                      makespan;
        const auto &pmf = sf.classification.model;
        for (std::size_t dst = 0; dst < pmf.size(); ++dst) {
            if (static_cast<int>(dst) == sf.source || pmf[dst] <= 0.0)
                continue;
            int sx = sf.source % 4, sy = sf.source / 4;
            int dx = static_cast<int>(dst) % 4;
            int dy = static_cast<int>(dst) / 4;
            int hops = std::abs(sx - dx) + std::abs(sy - dy);
            rhs += rate * pmf[dst] * hops;
        }
    }
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, rhs));
}

TEST(Analytic, LoadFactorScalesChannelLoadsLinearly)
{
    auto report = fftReport();
    auto base = AnalyticMeshModel::channelLoads(report, 1.0);
    auto doubled = AnalyticMeshModel::channelLoads(report, 2.0);
    ASSERT_EQ(base.size(), doubled.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_NEAR(doubled[i], 2.0 * base[i], 1e-12);
}

TEST(Analytic, LatencyMonotoneInLoad)
{
    auto report = fftReport();
    double prev = 0.0;
    for (double load : {0.5, 1.0, 2.0, 4.0}) {
        auto pred = AnalyticMeshModel::evaluate(report, load);
        EXPECT_GE(pred.latencyMean, prev);
        prev = pred.latencyMean;
    }
}

TEST(Analytic, SaturationFlagsInstability)
{
    auto report = fftReport();
    auto ok = AnalyticMeshModel::evaluate(report, 1.0);
    EXPECT_TRUE(ok.stable);
    auto saturated = AnalyticMeshModel::evaluate(report, 500.0);
    EXPECT_FALSE(saturated.stable);
    EXPECT_GT(saturated.maxChannelUtilization, 1.0);
}

TEST(Analytic, PredictionWithinFactorOfSimulationAtOperatingPoint)
{
    // The model is an approximation; at the fitted operating point it
    // must land within a factor of ~4 of the simulated latency and
    // utilization for the regular shared-memory workloads.
    apps::IntegerSort::Params p;
    p.n = 512;
    p.buckets = 16;
    apps::IntegerSort app{p};
    CharacterizationPipeline pipeline;
    auto report = pipeline.runDynamic(app, machine4x4());
    auto pred = AnalyticMeshModel::evaluate(report);
    EXPECT_TRUE(pred.stable);
    EXPECT_GT(pred.latencyMean, 0.0);
    double ratio = report.network.latencyMean / pred.latencyMean;
    EXPECT_GT(ratio, 0.25);
    EXPECT_LT(ratio, 4.0);
    double utilRatio = report.network.avgChannelUtilization /
                       std::max(pred.avgChannelUtilization, 1e-9);
    EXPECT_GT(utilRatio, 0.25);
    EXPECT_LT(utilRatio, 4.0);
}

TEST(Analytic, EmptyReportYieldsZeroPrediction)
{
    CharacterizationReport report;
    report.nprocs = 16;
    auto pred = AnalyticMeshModel::evaluate(report);
    EXPECT_DOUBLE_EQ(pred.latencyMean, 0.0);
    EXPECT_TRUE(pred.stable);
}

} // namespace
