/**
 * @file
 * Golden tests for the distribution fitter (src/stats/fit.cc): draw
 * synthetic samples from KNOWN parameters and assert the fitter both
 * classifies the family correctly and recovers the parameters within
 * tolerance. These pin the paper's SAS/STAT-substitute regression —
 * the temporal-characterization column of Tables 2 and 3 depends on
 * the fitter picking the right family.
 *
 * Seeds are fixed, so every run fits the exact same samples; the
 * tolerances absorb sampling error at the chosen n, not run-to-run
 * variance.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "stats/stats.hh"

namespace {

using namespace cchar::stats;

std::vector<double>
sampleFrom(const Distribution &d, std::size_t n, std::uint64_t seed)
{
    Rng rng{seed};
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = d.sample(rng);
    return xs;
}

// --------------------------------------------------------------------
// Uniform

TEST(FitGolden, UniformClassificationAndRecovery)
{
    UniformDist truth{2.0, 6.0};
    auto xs = sampleFrom(truth, 4000, 42);

    DistributionFitter fitter;
    FitResult best = fitter.bestFit(xs);

    ASSERT_TRUE(best.usable);
    EXPECT_EQ(best.dist->name(), "uniform");

    auto p = best.dist->params();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_NEAR(p[0], 2.0, 0.1); // a
    EXPECT_NEAR(p[1], 6.0, 0.1); // b
    EXPECT_GT(best.gof.r2, 0.99);
    EXPECT_LT(best.gof.ks, 0.05);
}

// --------------------------------------------------------------------
// Exponential

TEST(FitGolden, ExponentialClassificationAndRecovery)
{
    Exponential truth{0.5}; // mean 2
    auto xs = sampleFrom(truth, 4000, 7);

    DistributionFitter fitter;
    FitResult best = fitter.bestFit(xs);

    ASSERT_TRUE(best.usable);
    // The 2- and 3-parameter exponential generalizations (shifted,
    // hyperexponential, gamma/Weibull with shape ~1) can edge out the
    // pure family on adjusted R^2 for a finite sample; any of them is
    // a correct classification as long as the recovered shape
    // degenerates to the plain exponential.
    const std::string name = best.dist->name();
    const bool exponentialFamily =
        name == "exponential" || name == "shifted-exponential" ||
        name == "hyperexponential-2" || name == "gamma" ||
        name == "weibull" || name == "erlang";
    EXPECT_TRUE(exponentialFamily) << "classified as " << name;

    // Moment recovery is asserted on the direct exponential fit below
    // (a winning mixture's analytic moments can be dominated by a
    // near-zero-weight component and are not a meaningful golden
    // value); the best fit must still track the empirical CDF.
    EXPECT_GT(best.gof.r2, 0.99);
    EXPECT_LT(best.gof.ks, 0.05);
}

TEST(FitGolden, ExponentialDirectFitRecoversRate)
{
    Exponential truth{0.5};
    auto xs = sampleFrom(truth, 4000, 7);

    DistributionFitter fitter;
    FitResult fr = fitter.fitOne(xs, Exponential{});

    ASSERT_TRUE(fr.usable);
    auto p = fr.dist->params();
    ASSERT_EQ(p.size(), 1u);
    EXPECT_NEAR(p[0], 0.5, 0.05); // rate
    EXPECT_GT(fr.gof.r2, 0.99);
}

// --------------------------------------------------------------------
// Bimodal (two-phase hyperexponential)

TEST(FitGolden, BimodalClassificationAndRecovery)
{
    // Strongly bimodal: 30% fast messages (mean 1/3), 70% slow
    // (mean 2.5) — CV well above 1, which is what pushes the fitter
    // away from the one-parameter families.
    HyperExponential2 truth{0.3, 3.0, 0.4};
    auto xs = sampleFrom(truth, 6000, 11);

    DistributionFitter fitter;
    FitResult best = fitter.bestFit(xs);

    ASSERT_TRUE(best.usable);
    EXPECT_EQ(best.dist->name(), "hyperexponential-2");

    // Mixture parameters are only identifiable up to component swap;
    // normalize to rate1 >= rate2 before comparing.
    auto p = best.dist->params();
    ASSERT_EQ(p.size(), 3u);
    double prob = p[0], r1 = p[1], r2 = p[2];
    if (r1 < r2) {
        std::swap(r1, r2);
        prob = 1.0 - prob;
    }
    EXPECT_NEAR(prob, 0.3, 0.1);
    EXPECT_NEAR(r1, 3.0, 0.9);
    EXPECT_NEAR(r2, 0.4, 0.1);
    EXPECT_NEAR(best.dist->mean(), truth.mean(), 0.15);
    EXPECT_GT(best.gof.r2, 0.99);
}

// --------------------------------------------------------------------
// Degenerate input

TEST(FitGolden, ConstantSampleIsDeterministic)
{
    std::vector<double> xs(512, 3.25);
    DistributionFitter fitter;
    FitResult best = fitter.bestFit(xs);

    ASSERT_TRUE(best.usable);
    EXPECT_EQ(best.dist->name(), "deterministic");
    EXPECT_NEAR(best.dist->mean(), 3.25, 1e-9);
}

// --------------------------------------------------------------------
// Ranking sanity: the generating family should beat a clearly wrong
// one on adjusted R^2 for every golden sample.

TEST(FitGolden, GeneratingFamilyOutranksWrongFamily)
{
    UniformDist truth{1.0, 3.0};
    auto xs = sampleFrom(truth, 4000, 99);

    DistributionFitter fitter;
    FitResult uniform = fitter.fitOne(xs, UniformDist{});
    FitResult pareto = fitter.fitOne(xs, Pareto{});

    ASSERT_TRUE(uniform.usable);
    if (pareto.usable) {
        EXPECT_GT(uniform.adjustedR2(xs.size()),
                  pareto.adjustedR2(xs.size()));
    }
}

// --------------------------------------------------------------------
// Sampler properties: the synthesis loop stands on (a) samplers that
// reproduce the fitted parameters when their output is refit, and
// (b) bit-exact seeded determinism. Both are asserted across many
// seeds, not one lucky draw.

TEST(SamplerProperty, RefitRecoversParamsAcrossSeeds)
{
    struct Case
    {
        const char *family;
        std::vector<double> params;
        const Distribution *prototype;
        double tol; // relative tolerance per parameter
    };
    static const Exponential exponentialProto{};
    static const GammaDist gammaProto{};
    static const Weibull weibullProto{};
    static const Normal normalProto{};
    static const UniformDist uniformProto{};
    const Case cases[] = {
        {"exponential", {0.8}, &exponentialProto, 0.10},
        {"gamma", {2.0, 1.0}, &gammaProto, 0.20},
        {"weibull", {1.5, 2.0}, &weibullProto, 0.20},
        {"normal", {5.0, 1.0}, &normalProto, 0.10},
        {"uniform", {2.0, 6.0}, &uniformProto, 0.10},
    };

    DistributionFitter fitter;
    for (const Case &c : cases) {
        auto truth = distributionFromName(c.family, c.params);
        ASSERT_NE(truth, nullptr) << c.family;
        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            auto xs = sampleFrom(*truth, 4000, seed * 1009);
            FitResult fr = fitter.fitOne(xs, *c.prototype);
            ASSERT_TRUE(fr.usable) << c.family << " seed " << seed;
            auto p = fr.dist->params();
            ASSERT_EQ(p.size(), c.params.size())
                << c.family << " seed " << seed;
            for (std::size_t i = 0; i < p.size(); ++i) {
                double scale = std::max(std::abs(c.params[i]), 1.0);
                EXPECT_NEAR(p[i], c.params[i], c.tol * scale)
                    << c.family << " param " << i << " seed " << seed;
            }
        }
    }
}

TEST(SamplerProperty, DistributionFromNameRoundTrips)
{
    struct Case
    {
        const char *family;
        std::vector<double> params;
        int stages;
    };
    const Case cases[] = {
        {"exponential", {0.8}, 0},
        {"shifted-exponential", {0.5, 1.2}, 0},
        {"hyperexponential-2", {0.3, 3.0, 0.4}, 0},
        {"erlang", {2.0}, 3},
        {"gamma", {2.0, 1.0}, 0},
        {"weibull", {1.5, 2.0}, 0},
        {"lognormal", {0.5, 0.4}, 0},
        {"normal", {5.0, 1.0}, 0},
        {"uniform", {2.0, 6.0}, 0},
        {"pareto", {2.5, 1.0}, 0},
        {"deterministic", {3.25}, 0},
    };
    for (const Case &c : cases) {
        auto d = distributionFromName(c.family, c.params, c.stages);
        ASSERT_NE(d, nullptr) << c.family;
        EXPECT_EQ(d->name(), c.family);
        auto p = d->params();
        ASSERT_EQ(p.size(), c.params.size()) << c.family;
        for (std::size_t i = 0; i < p.size(); ++i)
            EXPECT_DOUBLE_EQ(p[i], c.params[i]) << c.family;
    }

    EXPECT_EQ(distributionFromName("cauchy", std::vector<double>{1.0}),
              nullptr);
    EXPECT_EQ(distributionFromName("exponential", std::vector<double>{}),
              nullptr);
    EXPECT_EQ(distributionFromName("exponential",
                                   std::vector<double>{1.0, 2.0}),
              nullptr);
    EXPECT_EQ(distributionFromName("erlang", std::vector<double>{2.0}, 0),
              nullptr);
}

TEST(SamplerProperty, SameSeedDrawsAreByteIdentical)
{
    const char *families[] = {"exponential", "gamma", "weibull",
                              "normal", "hyperexponential-2"};
    const std::vector<std::vector<double>> params = {
        {0.8}, {2.0, 1.0}, {1.5, 2.0}, {5.0, 1.0}, {0.3, 3.0, 0.4}};

    for (std::size_t f = 0; f < std::size(families); ++f) {
        auto d = distributionFromName(families[f], params[f]);
        ASSERT_NE(d, nullptr) << families[f];
        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            auto a = sampleFrom(*d, 256, seed);
            auto b = sampleFrom(*d, 256, seed);
            // Bitwise, not approximate: the replay contract is
            // byte-identical output, so the draws must be too.
            EXPECT_EQ(std::memcmp(a.data(), b.data(),
                                  a.size() * sizeof(double)),
                      0)
                << families[f] << " seed " << seed;
        }
    }
}

TEST(SamplerProperty, DiscreteSamplerMatchesLinearScanDrawForDraw)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng setup{seed * 613};
        std::size_t n = 2 + setup.below(30);
        std::vector<double> weights(n);
        for (auto &w : weights)
            w = setup.uniform01();
        // A couple of zero-mass categories exercise the CDF plateaus.
        weights[setup.below(n)] = 0.0;
        DiscretePmf pmf{weights};
        DiscreteSampler sampler = DiscreteSampler::fromPmf(pmf);

        Rng scanRng{seed};
        Rng cdfRng{seed};
        for (int i = 0; i < 2000; ++i) {
            EXPECT_EQ(pmf.sample(scanRng), sampler.sample(cdfRng))
                << "seed " << seed << " draw " << i;
        }
    }
}

TEST(SamplerProperty, DiscreteSamplerRecoversPmfFrequencies)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng setup{seed * 389};
        std::size_t n = 3 + setup.below(12);
        std::vector<double> weights(n);
        for (auto &w : weights)
            w = 0.05 + setup.uniform01();
        DiscretePmf pmf{weights};
        DiscreteSampler sampler = DiscreteSampler::fromPmf(pmf);

        const int draws = 20000;
        std::vector<double> counts(n, 0.0);
        Rng rng{seed};
        for (int i = 0; i < draws; ++i)
            counts[static_cast<std::size_t>(sampler.sample(rng))] += 1.0;

        DiscretePmf observed = DiscretePmf::fromCounts(counts);
        EXPECT_LT(pmf.tvd(observed), 0.03) << "seed " << seed;
    }
}

TEST(SamplerProperty, LengthSamplerMapsValuesAndFallback)
{
    std::vector<std::pair<int, double>> lengthPmf = {
        {8, 0.5}, {64, 0.3}, {1024, 0.2}};
    DiscreteSampler sampler =
        DiscreteSampler::fromLengthPmf(lengthPmf, 8);

    Rng rng{7};
    std::vector<double> counts(3, 0.0);
    for (int i = 0; i < 20000; ++i) {
        int v = sampler.sample(rng);
        ASSERT_TRUE(v == 8 || v == 64 || v == 1024) << v;
        counts[v == 8 ? 0 : v == 64 ? 1 : 2] += 1.0;
    }
    DiscretePmf observed = DiscretePmf::fromCounts(counts);
    DiscretePmf expected{{0.5, 0.3, 0.2}};
    EXPECT_LT(expected.tvd(observed), 0.03);

    // Empty support: every draw returns the fallback value.
    DiscreteSampler empty = DiscreteSampler::fromLengthPmf({}, 96);
    Rng rng2{11};
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(empty.sample(rng2), 96);
}

} // namespace
