/**
 * @file
 * Golden tests for the distribution fitter (src/stats/fit.cc): draw
 * synthetic samples from KNOWN parameters and assert the fitter both
 * classifies the family correctly and recovers the parameters within
 * tolerance. These pin the paper's SAS/STAT-substitute regression —
 * the temporal-characterization column of Tables 2 and 3 depends on
 * the fitter picking the right family.
 *
 * Seeds are fixed, so every run fits the exact same samples; the
 * tolerances absorb sampling error at the chosen n, not run-to-run
 * variance.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/stats.hh"

namespace {

using namespace cchar::stats;

std::vector<double>
sampleFrom(const Distribution &d, std::size_t n, std::uint64_t seed)
{
    Rng rng{seed};
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = d.sample(rng);
    return xs;
}

// --------------------------------------------------------------------
// Uniform

TEST(FitGolden, UniformClassificationAndRecovery)
{
    UniformDist truth{2.0, 6.0};
    auto xs = sampleFrom(truth, 4000, 42);

    DistributionFitter fitter;
    FitResult best = fitter.bestFit(xs);

    ASSERT_TRUE(best.usable);
    EXPECT_EQ(best.dist->name(), "uniform");

    auto p = best.dist->params();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_NEAR(p[0], 2.0, 0.1); // a
    EXPECT_NEAR(p[1], 6.0, 0.1); // b
    EXPECT_GT(best.gof.r2, 0.99);
    EXPECT_LT(best.gof.ks, 0.05);
}

// --------------------------------------------------------------------
// Exponential

TEST(FitGolden, ExponentialClassificationAndRecovery)
{
    Exponential truth{0.5}; // mean 2
    auto xs = sampleFrom(truth, 4000, 7);

    DistributionFitter fitter;
    FitResult best = fitter.bestFit(xs);

    ASSERT_TRUE(best.usable);
    // The 2- and 3-parameter exponential generalizations (shifted,
    // hyperexponential, gamma/Weibull with shape ~1) can edge out the
    // pure family on adjusted R^2 for a finite sample; any of them is
    // a correct classification as long as the recovered shape
    // degenerates to the plain exponential.
    const std::string name = best.dist->name();
    const bool exponentialFamily =
        name == "exponential" || name == "shifted-exponential" ||
        name == "hyperexponential-2" || name == "gamma" ||
        name == "weibull" || name == "erlang";
    EXPECT_TRUE(exponentialFamily) << "classified as " << name;

    // Moment recovery is asserted on the direct exponential fit below
    // (a winning mixture's analytic moments can be dominated by a
    // near-zero-weight component and are not a meaningful golden
    // value); the best fit must still track the empirical CDF.
    EXPECT_GT(best.gof.r2, 0.99);
    EXPECT_LT(best.gof.ks, 0.05);
}

TEST(FitGolden, ExponentialDirectFitRecoversRate)
{
    Exponential truth{0.5};
    auto xs = sampleFrom(truth, 4000, 7);

    DistributionFitter fitter;
    FitResult fr = fitter.fitOne(xs, Exponential{});

    ASSERT_TRUE(fr.usable);
    auto p = fr.dist->params();
    ASSERT_EQ(p.size(), 1u);
    EXPECT_NEAR(p[0], 0.5, 0.05); // rate
    EXPECT_GT(fr.gof.r2, 0.99);
}

// --------------------------------------------------------------------
// Bimodal (two-phase hyperexponential)

TEST(FitGolden, BimodalClassificationAndRecovery)
{
    // Strongly bimodal: 30% fast messages (mean 1/3), 70% slow
    // (mean 2.5) — CV well above 1, which is what pushes the fitter
    // away from the one-parameter families.
    HyperExponential2 truth{0.3, 3.0, 0.4};
    auto xs = sampleFrom(truth, 6000, 11);

    DistributionFitter fitter;
    FitResult best = fitter.bestFit(xs);

    ASSERT_TRUE(best.usable);
    EXPECT_EQ(best.dist->name(), "hyperexponential-2");

    // Mixture parameters are only identifiable up to component swap;
    // normalize to rate1 >= rate2 before comparing.
    auto p = best.dist->params();
    ASSERT_EQ(p.size(), 3u);
    double prob = p[0], r1 = p[1], r2 = p[2];
    if (r1 < r2) {
        std::swap(r1, r2);
        prob = 1.0 - prob;
    }
    EXPECT_NEAR(prob, 0.3, 0.1);
    EXPECT_NEAR(r1, 3.0, 0.9);
    EXPECT_NEAR(r2, 0.4, 0.1);
    EXPECT_NEAR(best.dist->mean(), truth.mean(), 0.15);
    EXPECT_GT(best.gof.r2, 0.99);
}

// --------------------------------------------------------------------
// Degenerate input

TEST(FitGolden, ConstantSampleIsDeterministic)
{
    std::vector<double> xs(512, 3.25);
    DistributionFitter fitter;
    FitResult best = fitter.bestFit(xs);

    ASSERT_TRUE(best.usable);
    EXPECT_EQ(best.dist->name(), "deterministic");
    EXPECT_NEAR(best.dist->mean(), 3.25, 1e-9);
}

// --------------------------------------------------------------------
// Ranking sanity: the generating family should beat a clearly wrong
// one on adjusted R^2 for every golden sample.

TEST(FitGolden, GeneratingFamilyOutranksWrongFamily)
{
    UniformDist truth{1.0, 3.0};
    auto xs = sampleFrom(truth, 4000, 99);

    DistributionFitter fitter;
    FitResult uniform = fitter.fitOne(xs, UniformDist{});
    FitResult pareto = fitter.fitOne(xs, Pareto{});

    ASSERT_TRUE(uniform.usable);
    if (pareto.usable) {
        EXPECT_GT(uniform.adjustedR2(xs.size()),
                  pareto.adjustedR2(xs.size()));
    }
}

} // namespace
